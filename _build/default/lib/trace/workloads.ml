open Wcp_util

type t = { comp : Computation.t; procs : int array; name : string }

(* Every workload below is a tiny agent simulation: a global loop picks
   a random enabled action (send or receive) and applies it to the
   Builder, so the interleaving — and hence the happened-before order —
   varies with the seed while the protocol logic stays fixed. *)

let pick_nth rng l =
  let k = Rng.int rng (List.length l) in
  List.nth l k

(* Remove the [k]-th element, returning it and the remainder. *)
let take_nth k l =
  let rec go acc j = function
    | [] -> invalid_arg "take_nth"
    | x :: rest ->
        if j = k then (x, List.rev_append acc rest)
        else go (x :: acc) (j + 1) rest
  in
  go [] 0 l

let take_random rng l =
  let k = Rng.int rng (List.length l) in
  take_nth k l

(* ------------------------------------------------------------------ *)
(* Mutual exclusion (paper §2, example 1)                              *)
(* ------------------------------------------------------------------ *)

type mutex_client = Mx_idle of int | Mx_waiting of int | Mx_in_cs of int | Mx_done

let mutual_exclusion ~clients ~rounds ~p_bug ~seed =
  if clients < 2 then invalid_arg "mutual_exclusion: need >= 2 clients";
  if rounds < 1 then invalid_arg "mutual_exclusion: need >= 1 round";
  let rng = Rng.create seed in
  let n = clients + 1 in
  let coord = 0 in
  let b = Builder.create ~n in
  let state = Array.make (clients + 1) (Mx_idle rounds) in
  (* Coordinator mailbox: in-flight messages to the coordinator, tagged
     with their meaning. *)
  let coord_mail = ref [] in
  let grants_in_flight = Array.make (clients + 1) ([] : Builder.msg list) in
  let pending = Queue.create () in
  let outstanding = ref 0 in
  let done_count = ref 0 in
  let enabled () =
    let acts = ref [] in
    for c = 1 to clients do
      (match state.(c) with
      | Mx_idle _ -> acts := `Client_request c :: !acts
      | Mx_in_cs _ -> acts := `Client_release c :: !acts
      | Mx_waiting _ ->
          if grants_in_flight.(c) <> [] then acts := `Client_recv_grant c :: !acts
      | Mx_done -> ())
    done;
    if !coord_mail <> [] then acts := `Coord_recv :: !acts;
    if not (Queue.is_empty pending) then
      if !outstanding = 0 || Rng.bernoulli rng p_bug then
        acts := `Coord_grant :: !acts;
    !acts
  in
  let step = function
    | `Client_request c ->
        let r = match state.(c) with Mx_idle r -> r | _ -> assert false in
        let m = Builder.send b ~src:c ~dst:coord in
        coord_mail := (`Request c, m) :: !coord_mail;
        state.(c) <- Mx_waiting r
    | `Client_recv_grant c ->
        let r = match state.(c) with Mx_waiting r -> r | _ -> assert false in
        let m, rest = take_random rng grants_in_flight.(c) in
        grants_in_flight.(c) <- rest;
        Builder.recv b ~dst:c m;
        Builder.set_pred b ~proc:c true;
        state.(c) <- Mx_in_cs r
    | `Client_release c ->
        let r = match state.(c) with Mx_in_cs r -> r | _ -> assert false in
        let m = Builder.send b ~src:c ~dst:coord in
        coord_mail := (`Release, m) :: !coord_mail;
        if r - 1 = 0 then begin
          state.(c) <- Mx_done;
          incr done_count
        end
        else state.(c) <- Mx_idle (r - 1)
    | `Coord_recv -> (
        let (tag, m), rest = take_random rng !coord_mail in
        coord_mail := rest;
        Builder.recv b ~dst:coord m;
        match tag with
        | `Request c -> Queue.add c pending
        | `Release -> decr outstanding)
    | `Coord_grant ->
        let c = Queue.pop pending in
        let m = Builder.send b ~src:coord ~dst:c in
        grants_in_flight.(c) <- m :: grants_in_flight.(c);
        incr outstanding
  in
  let rec loop () =
    match enabled () with
    | [] -> ()
    | acts ->
        step (pick_nth rng acts);
        loop ()
  in
  loop ();
  { comp = Builder.finish b; procs = [| 1; 2 |]; name = "mutual-exclusion" }

(* ------------------------------------------------------------------ *)
(* Two-phase locking (paper §2, example 2)                             *)
(* ------------------------------------------------------------------ *)

type lock_kind = Read | Write

type tpl_client = Tp_idle of int | Tp_waiting of int | Tp_holding of int | Tp_done

let two_phase_locking ~readers ~writers ~requests ~p_bug ~seed =
  if readers < 1 || writers < 1 then
    invalid_arg "two_phase_locking: need >= 1 reader and >= 1 writer";
  if requests < 1 then invalid_arg "two_phase_locking: need >= 1 request";
  let rng = Rng.create seed in
  let clients = readers + writers in
  let n = clients + 1 in
  let manager = 0 in
  let kind c = if c <= readers then Read else Write in
  let b = Builder.create ~n in
  let state = Array.make (clients + 1) (Tp_idle requests) in
  let manager_mail = ref [] in
  let grants_in_flight = Array.make (clients + 1) ([] : Builder.msg list) in
  let pending = Queue.create () in
  let readers_held = ref 0 in
  let writer_held = ref false in
  let compatible = function
    | Read -> not !writer_held
    | Write -> (not !writer_held) && !readers_held = 0
  in
  let enabled () =
    let acts = ref [] in
    for c = 1 to clients do
      (match state.(c) with
      | Tp_idle _ -> acts := `Request c :: !acts
      | Tp_holding _ -> acts := `Unlock c :: !acts
      | Tp_waiting _ ->
          if grants_in_flight.(c) <> [] then acts := `Recv_grant c :: !acts
      | Tp_done -> ())
    done;
    if !manager_mail <> [] then acts := `Mgr_recv :: !acts;
    if not (Queue.is_empty pending) then begin
      let head = Queue.peek pending in
      if compatible (kind head) || Rng.bernoulli rng p_bug then
        acts := `Mgr_grant :: !acts
    end;
    !acts
  in
  let step = function
    | `Request c ->
        let r = match state.(c) with Tp_idle r -> r | _ -> assert false in
        let m = Builder.send b ~src:c ~dst:manager in
        manager_mail := (`Lock c, m) :: !manager_mail;
        state.(c) <- Tp_waiting r
    | `Recv_grant c ->
        let r = match state.(c) with Tp_waiting r -> r | _ -> assert false in
        let m, rest = take_random rng grants_in_flight.(c) in
        grants_in_flight.(c) <- rest;
        Builder.recv b ~dst:c m;
        Builder.set_pred b ~proc:c true;
        state.(c) <- Tp_holding r
    | `Unlock c ->
        let r = match state.(c) with Tp_holding r -> r | _ -> assert false in
        let m = Builder.send b ~src:c ~dst:manager in
        manager_mail := (`Unlock c, m) :: !manager_mail;
        if r - 1 = 0 then state.(c) <- Tp_done else state.(c) <- Tp_idle (r - 1)
    | `Mgr_recv -> (
        let (tag, m), rest = take_random rng !manager_mail in
        manager_mail := rest;
        Builder.recv b ~dst:manager m;
        match tag with
        | `Lock c -> Queue.add c pending
        | `Unlock c -> (
            match kind c with
            | Read -> decr readers_held
            | Write -> writer_held := false))
    | `Mgr_grant ->
        let c = Queue.pop pending in
        let m = Builder.send b ~src:manager ~dst:c in
        grants_in_flight.(c) <- m :: grants_in_flight.(c);
        (match kind c with
        | Read -> incr readers_held
        | Write -> writer_held := true)
  in
  let rec loop () =
    match enabled () with
    | [] -> ()
    | acts ->
        step (pick_nth rng acts);
        loop ()
  in
  loop ();
  {
    comp = Builder.finish b;
    procs = [| 1; readers + 1 |] (* first reader, first writer *);
    name = "two-phase-locking";
  }

(* ------------------------------------------------------------------ *)
(* Token ring (negative control)                                       *)
(* ------------------------------------------------------------------ *)

let token_ring ~procs ~laps ~p_bug ~seed =
  if procs < 2 then invalid_arg "token_ring: need >= 2 processes";
  if laps < 1 then invalid_arg "token_ring: need >= 1 lap";
  let rng = Rng.create seed in
  let b = Builder.create ~n:procs in
  (* Process 0 holds the token initially. *)
  Builder.set_pred b ~proc:0 true;
  let hops = (laps * procs) - 1 in
  let holder = ref 0 in
  for _ = 1 to hops do
    let src = !holder in
    let dst = (src + 1) mod procs in
    let m = Builder.send b ~src ~dst in
    (* Stale-flag bug: the sender keeps believing it holds the token. *)
    if Rng.bernoulli rng p_bug then Builder.set_pred b ~proc:src true;
    Builder.recv b ~dst m;
    Builder.set_pred b ~proc:dst true;
    holder := dst
  done;
  { comp = Builder.finish b; procs = [| 0; 1 |]; name = "token-ring" }

(* ------------------------------------------------------------------ *)
(* Dining philosophers (potential-deadlock detection)                  *)
(* ------------------------------------------------------------------ *)

type phil_state =
  | Ph_hungry of int  (* meals left *)
  | Ph_wait_left of int
  | Ph_wait_right of int * int  (* meals left, retries left *)
  | Ph_done

let max_right_retries = 5

let dining_philosophers ~philosophers ~meals ~patience ~seed =
  if philosophers < 2 then
    invalid_arg "dining_philosophers: need >= 2 philosophers";
  if meals < 1 then invalid_arg "dining_philosophers: need >= 1 meal";
  let k = philosophers in
  let n = 2 * k in
  let fork j = k + j in
  let left i = i and right i = (i + 1) mod k in
  let rng = Rng.create seed in
  let b = Builder.create ~n in
  let state = Array.init k (fun _ -> Ph_hungry meals) in
  (* holding.(i): philosopher i currently holds its left fork but not
     the right — the monitored predicate. Must be re-asserted on every
     new state of i while it holds. *)
  let holding = Array.make k false in
  let mark i = if holding.(i) then Builder.set_pred b ~proc:i true in
  (* fork agent state: None = free, Some phil = granted *)
  let fork_holder = Array.make k None in
  (* mailboxes: in-flight messages, by destination *)
  let fork_mail = Array.make k [] in
  (* at most one reply in flight per philosopher *)
  let phil_reply = Array.make k None in
  let send_to_fork i j tag =
    let m = Builder.send b ~src:i ~dst:(fork j) in
    mark i;
    fork_mail.(j) <- (tag, i, m) :: fork_mail.(j)
  in
  let reply_to_phil j i tag =
    let m = Builder.send b ~src:(fork j) ~dst:i in
    phil_reply.(i) <- Some (tag, j, m)
  in
  let enabled () =
    let acts = ref [] in
    for i = 0 to k - 1 do
      (match state.(i) with
      | Ph_hungry _ -> acts := `Request_left i :: !acts
      | Ph_wait_left _ | Ph_wait_right _ ->
          if phil_reply.(i) <> None then acts := `Phil_recv i :: !acts
      | Ph_done -> ())
    done;
    for j = 0 to k - 1 do
      if fork_mail.(j) <> [] then acts := `Fork_recv j :: !acts
    done;
    !acts
  in
  let step = function
    | `Request_left i ->
        let m = match state.(i) with Ph_hungry m -> m | _ -> assert false in
        send_to_fork i (left i) `Request;
        state.(i) <- Ph_wait_left m
    | `Fork_recv j -> (
        let (tag, i, m), rest = take_random rng fork_mail.(j) in
        fork_mail.(j) <- rest;
        Builder.recv b ~dst:(fork j) m;
        match tag with
        | `Request ->
            if fork_holder.(j) = None then begin
              fork_holder.(j) <- Some i;
              reply_to_phil j i `Grant
            end
            else reply_to_phil j i `Busy
        | `Release -> fork_holder.(j) <- None)
    | `Phil_recv i -> (
        let tag, j, m =
          match phil_reply.(i) with Some r -> r | None -> assert false
        in
        phil_reply.(i) <- None;
        Builder.recv b ~dst:i m;
        match (state.(i), tag) with
        | Ph_wait_left meals_left, `Grant ->
            (* Holds left, wants right: the circular-wait window. *)
            holding.(i) <- true;
            mark i;
            send_to_fork i (right i) `Request;
            state.(i) <- Ph_wait_right (meals_left, max_right_retries)
        | Ph_wait_left meals_left, `Busy ->
            ignore j;
            state.(i) <- Ph_hungry meals_left
        | Ph_wait_right (meals_left, _), `Grant ->
            (* Both forks: eat, then put both down. *)
            holding.(i) <- false;
            send_to_fork i (left i) `Release;
            send_to_fork i (right i) `Release;
            state.(i) <-
              (if meals_left - 1 = 0 then Ph_done else Ph_hungry (meals_left - 1))
        | Ph_wait_right (meals_left, retries), `Busy ->
            if retries > 0 && Rng.bernoulli rng patience then begin
              (* Keep the left fork, ask for the right again. *)
              send_to_fork i (right i) `Request;
              state.(i) <- Ph_wait_right (meals_left, retries - 1)
            end
            else begin
              (* Give up: release the left fork, start over. *)
              holding.(i) <- false;
              send_to_fork i (left i) `Release;
              state.(i) <- Ph_hungry meals_left
            end
        | (Ph_hungry _ | Ph_done), _ -> assert false)
  in
  let rec loop () =
    match enabled () with
    | [] -> ()
    | acts ->
        step (pick_nth rng acts);
        loop ()
  in
  loop ();
  {
    comp = Builder.finish b;
    procs = Array.init k Fun.id;
    name = "dining-philosophers";
  }

(* ------------------------------------------------------------------ *)
(* Client–server (wide WCP)                                            *)
(* ------------------------------------------------------------------ *)

type cs_client = Cs_idle of int | Cs_waiting of int | Cs_done

let client_server ~clients ~requests ~seed =
  if clients < 1 then invalid_arg "client_server: need >= 1 client";
  if requests < 1 then invalid_arg "client_server: need >= 1 request";
  let rng = Rng.create seed in
  let n = clients + 1 in
  let server = 0 in
  let b = Builder.create ~n in
  let state = Array.make (clients + 1) (Cs_idle requests) in
  let server_mail = ref [] in
  let responses_in_flight = Array.make (clients + 1) ([] : Builder.msg list) in
  let enabled () =
    let acts = ref [] in
    for c = 1 to clients do
      (match state.(c) with
      | Cs_idle _ -> acts := `Send_req c :: !acts
      | Cs_waiting _ ->
          if responses_in_flight.(c) <> [] then acts := `Recv_resp c :: !acts
      | Cs_done -> ())
    done;
    if !server_mail <> [] then acts := `Server_recv :: !acts;
    !acts
  in
  let step = function
    | `Send_req c ->
        let r = match state.(c) with Cs_idle r -> r | _ -> assert false in
        let m = Builder.send b ~src:c ~dst:server in
        server_mail := (c, m) :: !server_mail;
        Builder.set_pred b ~proc:c true;
        state.(c) <- Cs_waiting r
    | `Recv_resp c ->
        let r = match state.(c) with Cs_waiting r -> r | _ -> assert false in
        let m, rest = take_random rng responses_in_flight.(c) in
        responses_in_flight.(c) <- rest;
        Builder.recv b ~dst:c m;
        if r - 1 = 0 then state.(c) <- Cs_done else state.(c) <- Cs_idle (r - 1)
    | `Server_recv ->
        let (c, m), rest = take_random rng !server_mail in
        server_mail := rest;
        Builder.recv b ~dst:server m;
        let resp = Builder.send b ~src:server ~dst:c in
        responses_in_flight.(c) <- resp :: responses_in_flight.(c)
  in
  let rec loop () =
    match enabled () with
    | [] -> ()
    | acts ->
        step (pick_nth rng acts);
        loop ()
  in
  loop ();
  {
    comp = Builder.finish b;
    procs = Array.init clients (fun i -> i + 1);
    name = "client-server";
  }

let all ~seed =
  [
    mutual_exclusion ~clients:3 ~rounds:4 ~p_bug:0.3 ~seed;
    mutual_exclusion ~clients:3 ~rounds:4 ~p_bug:0.0
      ~seed:(Int64.add seed 1L);
    two_phase_locking ~readers:2 ~writers:2 ~requests:3 ~p_bug:0.3
      ~seed:(Int64.add seed 2L);
    two_phase_locking ~readers:2 ~writers:2 ~requests:3 ~p_bug:0.0
      ~seed:(Int64.add seed 3L);
    token_ring ~procs:5 ~laps:3 ~p_bug:0.4 ~seed:(Int64.add seed 4L);
    token_ring ~procs:5 ~laps:3 ~p_bug:0.0 ~seed:(Int64.add seed 5L);
    client_server ~clients:4 ~requests:3 ~seed:(Int64.add seed 6L);
    dining_philosophers ~philosophers:4 ~meals:2 ~patience:0.7
      ~seed:(Int64.add seed 7L);
  ]
