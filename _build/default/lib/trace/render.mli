(** Rendering computations for humans.

    {!ascii} gives a per-process listing of a run — states with their
    predicate flags, interleaved with the communication events — plus a
    message table; good enough to eyeball small traces in a terminal.
    {!dot} emits a Graphviz digraph of the space-time diagram (one rank
    per process, message edges dashed, predicate-true states filled,
    an optional cut highlighted) for anything bigger.

    Both renderings are deterministic, which the test suite uses to
    golden-test them. *)


val ascii : ?cut:Cut.t -> Computation.t -> string
(** Example output (predicate-true states are starred; cut states carry
    a [<] marker):
    {v
    P0: (1). !0>1 (2)* ?3 (3).<
    P1: (1). ?0 (2). !1>2 (3)* ...
    messages: 0:0->1 1:1->2 ...
    v} *)

val dot : ?cut:Cut.t -> Computation.t -> string
(** Graphviz source; render with [dot -Tsvg]. *)
