type t = { procs : int array; states : int array }

let make ~procs ~states =
  let n = Array.length procs in
  if n = 0 then invalid_arg "Cut.make: empty cut";
  if Array.length states <> n then
    invalid_arg "Cut.make: procs/states length mismatch";
  Array.iteri
    (fun k p ->
      if k > 0 && procs.(k - 1) >= p then
        invalid_arg "Cut.make: procs must be strictly increasing";
      if p < 0 then invalid_arg "Cut.make: negative process id";
      if states.(k) < 1 then invalid_arg "Cut.make: state index < 1")
    procs;
  { procs = Array.copy procs; states = Array.copy states }

let over_all comp states =
  make ~procs:(Array.init (Computation.n comp) Fun.id) ~states

let state c k = State.make ~proc:c.procs.(k) ~index:c.states.(k)

let width c = Array.length c.procs

let equal a b = a.procs = b.procs && a.states = b.states

let pointwise_leq a b =
  a.procs = b.procs
  && Array.for_all2 (fun x y -> x <= y) a.states b.states

let violations comp c =
  let pairs = ref [] in
  let w = width c in
  for k = 0 to w - 1 do
    for l = 0 to w - 1 do
      if k <> l then begin
        let a = state c k and b = state c l in
        if Computation.happened_before comp a b then pairs := (a, b) :: !pairs
      end
    done
  done;
  List.rev !pairs

let consistent comp c =
  let w = width c in
  let rec ok k l =
    if k = w then true
    else if l = w then ok (k + 1) (k + 2)
    else
      Computation.concurrent comp (state c k) (state c l) && ok k (l + 1)
  in
  ok 0 1

let satisfies comp c =
  let w = width c in
  let rec preds k = k = w || (Computation.pred comp (state c k) && preds (k + 1)) in
  preds 0 && consistent comp c

let pp ppf c =
  Format.pp_print_char ppf '{';
  Array.iteri
    (fun k p ->
      if k > 0 then Format.pp_print_char ppf ' ';
      Format.fprintf ppf "%d:%d" p c.states.(k))
    c.procs;
  Format.pp_print_char ppf '}'

let to_string c = Format.asprintf "%a" pp c
