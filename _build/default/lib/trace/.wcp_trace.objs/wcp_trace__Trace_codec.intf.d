lib/trace/trace_codec.mli: Computation
