lib/trace/workloads.ml: Array Builder Computation Fun Int64 List Queue Rng Wcp_util
