lib/trace/cut.ml: Array Computation Format Fun List State
