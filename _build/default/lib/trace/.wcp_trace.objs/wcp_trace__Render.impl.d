lib/trace/render.ml: Array Buffer Computation Cut List Printf State
