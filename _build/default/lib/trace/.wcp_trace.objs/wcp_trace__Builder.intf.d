lib/trace/builder.mli: Computation
