lib/trace/trace_codec.ml: Array Buffer Computation Format Fun List Printf State String
