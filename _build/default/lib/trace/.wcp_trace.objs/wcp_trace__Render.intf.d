lib/trace/render.mli: Computation Cut
