lib/trace/cut.mli: Computation Format State
