lib/trace/state.mli: Format
