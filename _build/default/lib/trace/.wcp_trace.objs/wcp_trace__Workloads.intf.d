lib/trace/workloads.mli: Computation
