lib/trace/state.ml: Format Stdlib
