lib/trace/generator.ml: Array Builder Fun List Rng Wcp_util
