lib/trace/computation.mli: Dependence Format State Vector_clock Wcp_clocks
