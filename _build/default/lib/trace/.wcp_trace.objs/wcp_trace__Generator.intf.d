lib/trace/generator.mli: Computation Rng Wcp_util
