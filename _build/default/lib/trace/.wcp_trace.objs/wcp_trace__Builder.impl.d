lib/trace/builder.ml: Array Computation List Printf
