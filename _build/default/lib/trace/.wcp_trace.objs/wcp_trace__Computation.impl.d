lib/trace/computation.ml: Array Dependence Format List Queue State Vector_clock Wcp_clocks
