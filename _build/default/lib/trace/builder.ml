type msg = { msg_id : int; msg_dst : int; mutable received : bool }

type t = {
  n : int;
  rev_ops : Computation.op list array;
  rev_pred : bool list array;
  (* Head of rev_pred.(i) is the current state's flag. *)
  mutable next_msg : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Builder.create: n must be positive";
  {
    n;
    rev_ops = Array.make n [];
    rev_pred = Array.make n [ false ];
    next_msg = 0;
  }

let check_proc t p ~what =
  if p < 0 || p >= t.n then
    invalid_arg (Printf.sprintf "Builder.%s: no process %d" what p)

let send t ~src ~dst =
  check_proc t src ~what:"send";
  check_proc t dst ~what:"send";
  if src = dst then invalid_arg "Builder.send: self-send";
  let id = t.next_msg in
  t.next_msg <- id + 1;
  t.rev_ops.(src) <- Computation.Send { dst; msg = id } :: t.rev_ops.(src);
  t.rev_pred.(src) <- false :: t.rev_pred.(src);
  { msg_id = id; msg_dst = dst; received = false }

let recv t ~dst m =
  check_proc t dst ~what:"recv";
  if m.received then invalid_arg "Builder.recv: message already received";
  if m.msg_dst <> dst then
    invalid_arg
      (Printf.sprintf "Builder.recv: message addressed to %d, not %d"
         m.msg_dst dst);
  m.received <- true;
  t.rev_ops.(dst) <- Computation.Recv { msg = m.msg_id } :: t.rev_ops.(dst);
  t.rev_pred.(dst) <- false :: t.rev_pred.(dst)

let internal t ~proc = check_proc t proc ~what:"internal"

let set_pred t ~proc v =
  check_proc t proc ~what:"set_pred";
  match t.rev_pred.(proc) with
  | _ :: rest -> t.rev_pred.(proc) <- v :: rest
  | [] -> assert false

let current_state t ~proc =
  check_proc t proc ~what:"current_state";
  List.length t.rev_pred.(proc)

let finish t =
  let ops = Array.map List.rev t.rev_ops in
  let pred = Array.map (fun l -> Array.of_list (List.rev l)) t.rev_pred in
  Computation.of_raw ~ops ~pred
