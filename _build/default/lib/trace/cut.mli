(** Global cuts over a (possibly strict) subset of processes.

    A weak conjunctive predicate is defined over [n <= N] of the [N]
    application processes (paper §1); a cut selects one local state
    from each of those [n] processes. The cut is {e consistent} when
    the selected states are pairwise concurrent, and {e satisfies} the
    WCP when additionally every selected state's local predicate holds.

    [procs] lists the predicate processes in increasing order;
    [states.(k)] is the 1-based state index selected from process
    [procs.(k)]. *)

type t = { procs : int array; states : int array }

val make : procs:int array -> states:int array -> t
(** @raise Invalid_argument on length mismatch, unsorted or duplicate
    processes, or state index < 1. *)

val over_all : Computation.t -> int array -> t
(** Cut over every process of the computation, with the given states. *)

val state : t -> int -> State.t
(** [state c k] is the [k]-th selected state as a {!State.t}. *)

val width : t -> int
(** Number of processes the cut spans. *)

val equal : t -> t -> bool

val pointwise_leq : t -> t -> bool
(** [pointwise_leq a b] iff the two cuts span the same processes and
    [a] selects an equal-or-earlier state on each. The first satisfying
    cut is the least satisfying cut in this order (WCPs are linear
    predicates, so it is unique). *)

val consistent : Computation.t -> t -> bool
(** All selected states pairwise concurrent. *)

val satisfies : Computation.t -> t -> bool
(** Consistent and every selected state's local predicate is true. *)

val violations : Computation.t -> t -> (State.t * State.t) list
(** All ordered pairs [(a, b)] of selected states with [a → b]; empty
    iff consistent. For diagnostics and tests. *)

val pp : Format.formatter -> t -> unit
(** Renders as [{0:3 2:1 5:4}] (process:state pairs). *)

val to_string : t -> string
