(** Workload generators for the scenarios that motivate the paper.

    Each workload simulates a small distributed protocol, records it as
    a {!Computation.t}, marks the per-state truth of the relevant local
    predicates, and names the subset of processes the WCP spans.

    - {!mutual_exclusion} is the paper's §2 example 1: detecting
      [CS_1 ∧ CS_2] catches a mutual-exclusion violation.
    - {!two_phase_locking} is the paper's §2 example 2: detecting
      [(P_1 has read lock) ∧ (P_2 has write lock)] catches a broken
      lock manager.
    - {!token_ring} is a negative control: "holds the token" states are
      never concurrent in a correct ring, so detection must not fire
      unless the injected bug is enabled.
    - {!client_server} gives a WCP spanning nearly all processes
      ("every client is blocked on the server"), the regime where the
      vector-clock algorithm is at its best. *)

type t = {
  comp : Computation.t;
  procs : int array;  (** the [n] processes the WCP is defined over *)
  name : string;
}

val mutual_exclusion :
  clients:int -> rounds:int -> p_bug:float -> seed:int64 -> t
(** Central-coordinator mutual exclusion (coordinator is process 0,
    clients are 1..clients). With probability [p_bug] per grant
    decision the coordinator issues a grant while another is
    outstanding, allowing two critical sections to overlap. The WCP
    spans the first two clients; the local predicate is "in critical
    section". *)

val two_phase_locking :
  readers:int -> writers:int -> requests:int -> p_bug:float -> seed:int64 -> t
(** Lock manager (process 0) serving read/write lock requests for one
    shared item. Correct behaviour: any number of concurrent readers,
    writers exclusive. With probability [p_bug] per grant the manager
    ignores the conflict check. WCP spans one reader and one writer:
    "holds read lock" ∧ "holds write lock". *)

val token_ring : procs:int -> laps:int -> p_bug:float -> seed:int64 -> t
(** A token circulates [laps] times around a unidirectional ring. The
    local predicate is "believes it holds the token". With [p_bug] a
    process keeps believing so after passing the token on (a stale
    flag). WCP spans the first two ring members. *)

val dining_philosophers :
  philosophers:int -> meals:int -> patience:float -> seed:int64 -> t
(** The classic potential-deadlock detector. Philosophers (processes
    [0..k-1]) and fork agents (processes [k..2k-1]) alternate around a
    table; philosopher [i] needs forks [i] (left) and [(i+1) mod k]
    (right). Each philosopher requests left, then right; if the right
    fork is busy it gives up with probability [1 - patience] per
    retry — releasing the left fork and starting over — so every run
    terminates. The local predicate is "holds the left fork but not the
    right": the WCP over all philosophers is the circular-wait
    condition, i.e. a state from which the system {e could} have
    deadlocked. High [patience] makes the window wide (detectable);
    [patience = 0.] gives up immediately on contention and the window
    still occurs whenever all left forks are granted concurrently. *)

val client_server : clients:int -> requests:int -> seed:int64 -> t
(** Clients (1..clients) send [requests] requests each to a server
    (process 0), blocking for each response. Local predicate: "has a
    request outstanding". WCP spans all clients: every client blocked
    simultaneously. *)

val all :
  seed:int64 -> t list
(** One representative instance of each workload (used by the
    agreement experiment E7 and the test suite). *)
