type t = { proc : int; index : int }

let make ~proc ~index = { proc; index }

let equal a b = a.proc = b.proc && a.index = b.index

let compare = Stdlib.compare

let pp ppf { proc; index } = Format.fprintf ppf "(%d,%d)" proc index

let to_string t = Format.asprintf "%a" pp t
