lib/sim/engine.ml: Array Float Heap Logs Network Printf Rng Stats Wcp_util
