lib/sim/network.ml: Hashtbl Option Rng Wcp_util
