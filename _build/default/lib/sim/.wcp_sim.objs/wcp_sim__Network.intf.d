lib/sim/network.mli: Rng Wcp_util
