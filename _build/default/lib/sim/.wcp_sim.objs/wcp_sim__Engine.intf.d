lib/sim/engine.mli: Network Rng Stats Wcp_util
