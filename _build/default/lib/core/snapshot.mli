(** Local snapshots — the application-to-monitor messages.

    Fig. 2 (vector-clock algorithm) and §4.1 (direct-dependence
    algorithm) define when an application process reports to its
    monitor: whenever the local predicate is true in a state, at most
    once per state (the [firstflag] discipline means one snapshot per
    interval between communication events). This module derives, from
    a recorded computation, exactly the snapshot sequence each
    application process would emit, so the replay driver can inject
    them into the simulation at the right causal points.

    Invariant: each stream is sorted by state index, which is also the
    FIFO order in which the monitor must consume it. *)

open Wcp_trace
open Wcp_clocks

type vc = { state : int; clock : int array }
(** Vector-clock snapshot: the emitting state's index and its vector
    clock {e projected onto the spec processes} ([Spec.width] entries),
    which is all the algorithm transmits (paper: message size O(n)). *)

type dd = { state : int; deps : Dependence.t list }
(** Direct-dependence snapshot: the emitting state's scalar clock
    (equal to its index) and all direct dependences recorded since the
    previous snapshot of this process (§4.1: the list is reset after
    each snapshot). *)

val vc_stream : Computation.t -> Spec.t -> proc:int -> vc list
(** Snapshots emitted by spec process [proc]: one per predicate-true
    state. *)

val dd_stream : Computation.t -> Spec.t -> proc:int -> dd list
(** Snapshots emitted by process [proc] under the direct-dependence
    algorithm. All [N] processes participate (§4); processes outside
    the spec have the trivially-true predicate, so {e every} state of
    theirs is a candidate. *)

val gcp_stream :
  Computation.t ->
  Spec.t ->
  channels:(int * int) list ->
  proc:int ->
  (int * int array * int array) list
(** Snapshots for the online GCP checker ([6]): for each candidate
    state of [proc] (predicate-true states for spec processes, every
    state otherwise), its full [N]-wide vector clock and one counter
    per channel — the number of messages [proc] has sent on the channel
    before that state when it is the channel's source, received at that
    state when it is its destination, [0] when it is neither. Returned
    as [(state, clock, counts)] triples. *)

val total_dd_deps : Computation.t -> Spec.t -> int
(** Total dependences carried by all dd snapshot streams (for bits
    accounting and the §4.4 bound checks). *)
