open Wcp_trace
open Wcp_sim

let monitor_of ~n p = n + p

let extra_id ~n = 2 * n

let default_network ~n =
  let fifo ~src ~dst =
    src < n && (dst = monitor_of ~n src || dst = extra_id ~n)
  in
  Network.create ~fifo ~latency:(Network.Uniform (0.5, 1.5)) ()

let make_engine_n ?network ~seed ~n () =
  let network = match network with Some nw -> nw | None -> default_network ~n in
  Engine.create ~network ~num_processes:((2 * n) + 1) ~seed ()

let make_engine ?network ~seed comp =
  make_engine_n ?network ~seed ~n:(Computation.n comp) ()

type announce = Detection.outcome -> unit

let finish engine ~outcome ~extras =
  Engine.run engine;
  match !outcome with
  | None -> failwith "detection run ended without an outcome"
  | Some o ->
      {
        Detection.outcome = o;
        stats = Engine.stats engine;
        sim_time = Engine.now engine;
        events = Engine.events_processed engine;
        extras;
      }
