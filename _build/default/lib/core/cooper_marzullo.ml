open Wcp_trace
open Wcp_clocks

type exploration = { cuts_explored : int; max_frontier : int }

module Key = struct
  type t = int array

  let equal = ( = )

  let hash = Hashtbl.hash
end

module Seen = Hashtbl.Make (Key)

let detect ?(limit = 5_000_000) comp phi =
  let n = Computation.n comp in
  let explored = ref 0 in
  let max_frontier = ref 0 in
  let seen = Seen.create 1024 in
  let initial = Array.make n 1 in
  (* The all-initial-states cut is always consistent. *)
  let frontier = Queue.create () in
  Queue.add initial frontier;
  Seen.replace seen initial ();
  let exploration () =
    { cuts_explored = !explored; max_frontier = !max_frontier }
  in
  (* Advancing process [i] within a consistent cut stays consistent iff
     the new state of [i] has not seen past any other selected state:
     forall j <> i, vc(i, c_i + 1).(j) < c_j. *)
  let can_advance cut i =
    cut.(i) < Computation.num_states comp i
    &&
    let v = Computation.vc comp (State.make ~proc:i ~index:(cut.(i) + 1)) in
    let rec ok j =
      j = n || ((j = i || Vector_clock.get v j < cut.(j)) && ok (j + 1))
    in
    ok 0
  in
  let rec level () =
    if Queue.is_empty frontier then Ok (Detection.No_detection, exploration ())
    else begin
      let width = Queue.length frontier in
      if width > !max_frontier then max_frontier := width;
      let hit = ref None in
      let next = Queue.create () in
      (try
         while not (Queue.is_empty frontier) do
           let cut = Queue.pop frontier in
           incr explored;
           if !explored > limit then raise Exit;
           let as_cut = Cut.over_all comp cut in
           if phi as_cut then begin
             hit := Some as_cut;
             raise Exit
           end;
           for i = 0 to n - 1 do
             if can_advance cut i then begin
               let succ = Array.copy cut in
               succ.(i) <- succ.(i) + 1;
               if not (Seen.mem seen succ) then begin
                 Seen.replace seen succ ();
                 Queue.add succ next
               end
             end
           done
         done
       with Exit -> ());
      match !hit with
      | Some cut -> Ok (Detection.Detected cut, exploration ())
      | None ->
          if !explored > limit then Error (exploration ())
          else begin
            Queue.transfer next frontier;
            level ()
          end
    end
  in
  level ()

let definitely ?(limit = 5_000_000) comp phi =
  let n = Computation.n comp in
  let explored = ref 0 in
  let max_frontier = ref 0 in
  let exploration () =
    { cuts_explored = !explored; max_frontier = !max_frontier }
  in
  let final = Array.init n (fun p -> Computation.num_states comp p) in
  let can_advance cut i =
    cut.(i) < Computation.num_states comp i
    &&
    let v = Computation.vc comp (State.make ~proc:i ~index:(cut.(i) + 1)) in
    let rec ok j =
      j = n || ((j = i || Vector_clock.get v j < cut.(j)) && ok (j + 1))
    in
    ok 0
  in
  (* Frontier: cuts at the current level reachable from the initial cut
     without passing through any phi-cut. *)
  let seen = Seen.create 1024 in
  let initial = Array.make n 1 in
  let frontier = Queue.create () in
  if not (phi (Cut.over_all comp initial)) then begin
    Queue.add initial frontier;
    Seen.replace seen initial ()
  end;
  incr explored;
  let rec level () =
    if Queue.is_empty frontier then
      (* Every observation was forced through a phi-cut. *)
      Ok (true, exploration ())
    else if Queue.fold (fun acc c -> acc || c = final) false frontier then
      (* Some observation reaches the end phi-free. *)
      Ok (false, exploration ())
    else begin
      let width = Queue.length frontier in
      if width > !max_frontier then max_frontier := width;
      let next = Queue.create () in
      let aborted = ref false in
      while not (Queue.is_empty frontier) do
        let cut = Queue.pop frontier in
        for i = 0 to n - 1 do
          if can_advance cut i then begin
            let succ = Array.copy cut in
            succ.(i) <- succ.(i) + 1;
            if not (Seen.mem seen succ) then begin
              Seen.replace seen succ ();
              incr explored;
              if !explored > limit then aborted := true;
              if not (phi (Cut.over_all comp succ)) then Queue.add succ next
            end
          end
        done
      done;
      if !aborted then Error (exploration ())
      else begin
        Queue.transfer next frontier;
        level ()
      end
    end
  in
  level ()

let wcp_phi comp spec cut =
  let w = Cut.width cut in
  let rec ok k =
    if k = w then true
    else
      let s = Cut.state cut k in
      ((not (Spec.mem spec s.State.proc)) || Computation.pred comp s)
      && ok (k + 1)
  in
  ok 0

let definitely_wcp ?limit comp spec = definitely ?limit comp (wcp_phi comp spec)

let detect_wcp ?limit comp spec = detect ?limit comp (wcp_phi comp spec)
