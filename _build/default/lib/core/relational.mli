(** Relational global predicates (Tomlinson & Garg [13], cited in §1).

    A {e relational} predicate constrains integer-valued local
    variables across processes — the canonical example is
    [x₁ + x₂ ≤ k] ("the two bank branches' combined balance dropped
    below the reserve"). Such predicates are not conjunctions of local
    predicates, so the WCP machinery does not apply directly; they are
    detected by minimising the sum over consistent cuts.

    Local variables are supplied as a {!valuation} — a function from a
    process's local state to the variable's value there (the recorded
    computation only stores predicate booleans; valuations live beside
    it, exactly like {!Boolean}'s primitives).

    Detection answers: what is the minimum of [Σᵢ xᵢ] over all
    consistent cuts spanning the given processes, and at which cut is
    it attained? [x₁ + x₂ ≤ k] was possible iff the minimum is [≤ k].
    Maximisation (for [≥ k] questions) is the same problem on negated
    valuations, provided as {!max_sum} for convenience.

    Two evaluators:
    - {!min_sum_pair}: the two-process case in O(states²) pair
      enumeration with O(1) concurrency tests — the case [13] treats
      efficiently;
    - {!min_sum}: any width, by bounded exhaustive search over
      state combinations with pairwise-consistency pruning. *)

open Wcp_trace

type valuation = proc:int -> state:int -> int

val of_pred :
  Computation.t -> ?when_true:int -> ?when_false:int -> unit -> valuation
(** Valuation view of the recorded predicate flags (default 1/0) —
    e.g. [Σ flags = n] is "all predicates hold", connecting relational
    and conjunctive detection in tests. *)

val sum_at : Computation.t -> valuation -> Cut.t -> int
(** [Σ] of the valuation over the cut's states. *)

val min_sum_pair :
  Computation.t -> valuation -> p:int -> q:int -> int * Cut.t
(** Minimum of [x_p + x_q] over consistent two-process cuts, with a
    witness cut (the lexicographically least among minimisers). Always
    defined: initial states are mutually concurrent.
    @raise Invalid_argument if [p = q] or out of range. *)

val min_sum :
  ?limit:int ->
  Computation.t ->
  valuation ->
  procs:int array ->
  (int * Cut.t, [ `Limit ]) result
(** Minimum over consistent cuts spanning [procs] (sorted, distinct),
    with a witness. [limit] (default 2 million) bounds the state
    combinations examined. *)

val max_sum :
  ?limit:int ->
  Computation.t ->
  valuation ->
  procs:int array ->
  (int * Cut.t, [ `Limit ]) result

val possibly_sum_leq :
  ?limit:int ->
  Computation.t ->
  valuation ->
  procs:int array ->
  k:int ->
  (Detection.outcome, [ `Limit ]) result
(** [Detected cut] iff some consistent cut has [Σ ≤ k]; the witness is
    the minimising cut (not in general the temporally first such
    cut — relational predicates are not linear, so a unique first cut
    need not exist). *)
