open Wcp_trace

type t = { procs : int array; index : int array }

let make comp procs =
  let n = Computation.n comp in
  if Array.length procs = 0 then invalid_arg "Spec.make: empty";
  let index = Array.make n (-1) in
  Array.iteri
    (fun k p ->
      if p < 0 || p >= n then invalid_arg "Spec.make: no such process";
      if k > 0 && procs.(k - 1) >= p then
        invalid_arg "Spec.make: procs must be strictly increasing";
      index.(p) <- k)
    procs;
  { procs = Array.copy procs; index }

let all comp = make comp (Array.init (Computation.n comp) Fun.id)

let procs t = t.procs

let width t = Array.length t.procs

let proc t k = t.procs.(k)

let mem t p = p >= 0 && p < Array.length t.index && t.index.(p) >= 0

let index_of t p =
  if not (mem t p) then raise Not_found;
  t.index.(p)

let project t vc = Array.map (fun p -> Wcp_clocks.Vector_clock.get vc p) t.procs

let pp ppf t =
  Format.fprintf ppf "wcp over {%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
       Format.pp_print_int)
    (Array.to_list t.procs)
