open Wcp_trace

type valuation = proc:int -> state:int -> int

let of_pred comp ?(when_true = 1) ?(when_false = 0) () : valuation =
 fun ~proc ~state ->
  if Computation.pred comp (State.make ~proc ~index:state) then when_true
  else when_false

let sum_at comp v cut =
  ignore comp;
  let total = ref 0 in
  for k = 0 to Cut.width cut - 1 do
    let s = Cut.state cut k in
    total := !total + v ~proc:s.State.proc ~state:s.State.index
  done;
  !total

let min_sum_pair comp v ~p ~q =
  let n = Computation.n comp in
  if p = q || p < 0 || q < 0 || p >= n || q >= n then
    invalid_arg "Relational.min_sum_pair: bad processes";
  let lo = min p q and hi = max p q in
  let best = ref None in
  for a = 1 to Computation.num_states comp lo do
    for b = 1 to Computation.num_states comp hi do
      if
        Computation.concurrent comp
          (State.make ~proc:lo ~index:a)
          (State.make ~proc:hi ~index:b)
      then begin
        let s = v ~proc:lo ~state:a + v ~proc:hi ~state:b in
        match !best with
        | Some (s', _, _) when s' <= s -> ()
        | _ -> best := Some (s, a, b)
      end
    done
  done;
  match !best with
  | Some (s, a, b) -> (s, Cut.make ~procs:[| lo; hi |] ~states:[| a; b |])
  | None ->
      (* Initial states are always pairwise concurrent. *)
      assert false

let min_sum ?(limit = 2_000_000) comp v ~procs =
  let w = Array.length procs in
  if w = 0 then invalid_arg "Relational.min_sum: no processes";
  Array.iteri
    (fun k p ->
      if p < 0 || p >= Computation.n comp then
        invalid_arg "Relational.min_sum: bad process";
      if k > 0 && procs.(k - 1) >= p then
        invalid_arg "Relational.min_sum: procs must be strictly increasing")
    procs;
  let states p = Computation.num_states comp p in
  let best = ref None in
  let examined = ref 0 in
  let pick = Array.make w 0 in
  let exception Limit in
  (* Depth-first over state combinations; prune a branch as soon as a
     chosen pair is ordered (consistency is pairwise). *)
  let rec explore k =
    if k = w then begin
      incr examined;
      if !examined > limit then raise Limit;
      let s =
        let acc = ref 0 in
        for i = 0 to w - 1 do
          acc := !acc + v ~proc:procs.(i) ~state:pick.(i)
        done;
        !acc
      in
      match !best with
      | Some (s', _) when s' <= s -> ()
      | _ -> best := Some (s, Array.copy pick)
    end
    else
      for cand = 1 to states procs.(k) do
        incr examined;
        if !examined > limit then raise Limit;
        pick.(k) <- cand;
        let consistent_so_far =
          let rec ok i =
            i >= k
            || (Computation.concurrent comp
                  (State.make ~proc:procs.(i) ~index:pick.(i))
                  (State.make ~proc:procs.(k) ~index:cand)
               && ok (i + 1))
          in
          ok 0
        in
        if consistent_so_far then explore (k + 1)
      done
  in
  match explore 0 with
  | () -> (
      match !best with
      | Some (s, states) -> Ok (s, Cut.make ~procs ~states)
      | None -> assert false (* the all-initial cut is consistent *))
  | exception Limit -> Error `Limit

let negate (v : valuation) ~proc ~state = -v ~proc ~state

let max_sum ?limit comp v ~procs =
  match min_sum ?limit comp (negate v) ~procs with
  | Ok (s, cut) -> Ok (-s, cut)
  | Error `Limit -> Error `Limit

let possibly_sum_leq ?limit comp v ~procs ~k =
  match min_sum ?limit comp v ~procs with
  | Ok (s, cut) ->
      Ok (if s <= k then Detection.Detected cut else Detection.No_detection)
  | Error `Limit -> Error `Limit
