open Wcp_trace

type interval = { proc : int; first : int; last : int }

let intervals comp ~proc =
  let num = Computation.num_states comp proc in
  let flag s = Computation.pred comp (State.make ~proc ~index:s) in
  let rec scan s acc =
    if s > num then List.rev acc
    else if not (flag s) then scan (s + 1) acc
    else begin
      let rec run e = if e < num && flag (e + 1) then run (e + 1) else e in
      let last = run s in
      scan (last + 1) ({ proc; first = s; last } :: acc)
    end
  in
  scan 1 []

(* Event-level happened-before. Event [a >= 1] of process [i] is the
   communication event between states [a] and [a+1]. For distinct
   processes, [e_i^a -> e_j^b] iff a message chain leaves [i] at event
   [>= a] and reaches [j] by event [<= b]; in state terms that is
   exactly "state [(i, a)] happened before state [(j, b+1)]" (a send at
   event [s >= a] goes out from state [s >= a]; a receive at event
   [r <= b] lands in state [r+1 <= b+1]). Same process: [a < b]. *)
let event_hb comp (i, a) (j, b) =
  if i = j then a < b
  else
    Computation.happened_before comp
      (State.make ~proc:i ~index:a)
      (State.make ~proc:j ~index:(b + 1))

(* begin(I_i) -> end(I_j), with the boundary conventions: an interval
   that starts at its process's initial state has no begin event (it
   "began at minus infinity"), one that ends at the final state has no
   end event ("ends at plus infinity"); both make the condition
   vacuously true. *)
let begins_before_end comp (ii : interval) (ij : interval) =
  if ii.first = 1 then true
  else if ij.last = Computation.num_states comp ij.proc then true
  else event_hb comp (ii.proc, ii.first - 1) (ij.proc, ij.last)

let definitely comp spec =
  let procs = Spec.procs spec in
  let n = Array.length procs in
  let queues = Array.map (fun p -> intervals comp ~proc:p) procs in
  let head k = match queues.(k) with [] -> None | iv :: _ -> Some iv in
  (* Find a pair whose condition fails; the SECOND component can never
     satisfy it with any current-or-later interval of the first, so it
     is eliminated (see the .mli). *)
  let find_eliminable () =
    let rec scan i j =
      if i = n then None
      else if j = n then scan (i + 1) 0
      else if i = j then scan i (j + 1)
      else
        match (head i, head j) with
        | Some a, Some b when not (begins_before_end comp a b) -> Some j
        | _ -> scan i (j + 1)
    in
    scan 0 0
  in
  let rec advance () =
    if Array.exists (fun q -> q = []) queues then None
    else
      match find_eliminable () with
      | Some j ->
          queues.(j) <- List.tl queues.(j);
          advance ()
      | None ->
          Some
            (Array.map
               (fun q -> match q with iv :: _ -> iv | [] -> assert false)
               queues)
  in
  advance ()

let holds comp spec = definitely comp spec <> None
