(** Generalized Conjunctive Predicates — the channel-predicate
    extension (Garg, Chase, Mitchell & Kilgore [6], cited in §1).

    A GCP conjoins local predicates with predicates over channel
    states: the messages sent but not yet received on a directed
    channel at the cut. Detection of the first satisfying cut remains
    possible when every channel predicate is {e linear}: whenever it is
    false at a cut, one identifiable endpoint can never satisfy it
    without advancing, so that endpoint's state can be eliminated.

    The built-in predicates and their forced endpoints:
    - {!empty} / {!at_most}: false means too many messages are in
      flight; only the receiver can drain them (sends only add), so
      the receiver advances;
    - {!at_least}: false means too few; only the sender can add, so
      the sender advances.

    This module implements the centralized checker of [6] offline, on
    a recorded computation; it generalizes {!Oracle.first_cut}, to
    which it degenerates when [channels] is empty. The cut spans all
    [N] processes (channel states are only well-defined on full
    cuts). *)

open Wcp_trace

type channel_predicate

val channel_predicate :
  name:string ->
  src:int ->
  dst:int ->
  holds:(Computation.message list -> bool) ->
  on_false:[ `Advance_src | `Advance_dst ] ->
  channel_predicate
(** Custom linear channel predicate over the in-flight messages of the
    channel [src → dst]. {b The caller asserts linearity}: [on_false]
    must name an endpoint whose current state cannot belong to any
    satisfying cut that agrees with the current cut elsewhere. A
    non-linear predicate can make {!detect} miss the first cut (it will
    still only ever report satisfying cuts). *)

val empty : src:int -> dst:int -> channel_predicate
(** The channel carries no in-flight message. *)

val at_most : int -> src:int -> dst:int -> channel_predicate
(** At most [k] messages in flight. *)

val at_least : int -> src:int -> dst:int -> channel_predicate
(** At least [k] messages in flight. *)

val counting :
  name:string ->
  src:int ->
  dst:int ->
  holds_count:(int -> bool) ->
  on_false:[ `Advance_src | `Advance_dst ] ->
  channel_predicate
(** Like {!channel_predicate}, but depending only on the {e number} of
    in-flight messages; such predicates can also be detected online by
    {!Checker_gcp}, which sees message counters rather than message
    lists. The built-ins below are all counting predicates. *)

val name : channel_predicate -> string

val endpoints : channel_predicate -> int * int
(** [(src, dst)]. *)

val forced_endpoint : channel_predicate -> int
(** The endpoint eliminated when the predicate is false at a consistent
    cut. *)

val count_based : channel_predicate -> (int -> bool) option
(** The counting form, when there is one. *)

val in_flight :
  Computation.t -> src:int -> dst:int -> cut:Cut.t -> Computation.message list
(** Messages sent on [src → dst] strictly before [src]'s cut state and
    not yet received at [dst]'s cut state. [cut] must span all
    processes. *)

val holds_at : Computation.t -> channel_predicate -> cut:Cut.t -> bool

val detect :
  Computation.t ->
  Spec.t ->
  channels:channel_predicate list ->
  Detection.outcome
(** First consistent cut (over all [N] processes) where every spec
    process's local predicate and every channel predicate holds.
    @raise Invalid_argument if a channel endpoint is out of range. *)

val detect_brute :
  Computation.t ->
  Spec.t ->
  channels:channel_predicate list ->
  Detection.outcome
(** Exponential reference: pointwise minimum over all satisfying cuts.
    Test use only.
    @raise Invalid_argument beyond 2 million combinations. *)
