open Wcp_trace
open Wcp_sim

let detect ?network ~seed comp spec =
  let n = Computation.n comp in
  let width = Spec.width spec in
  let engine = Run_common.make_engine ?network ~seed comp in
  let checker = Run_common.extra_id ~n in
  let outcome = ref None in
  let snapshots_seen = ref 0 in
  let announce ctx o =
    if !outcome = None then begin
      outcome := Some o;
      Engine.stop ctx
    end
  in
  let queues = Array.init width (fun _ -> Queue.create ()) in
  let finished = Array.make width false in
  let cand : Snapshot.vc option array = Array.make width None in
  let queued_words = ref 0 in
  (* (k, a) happened before (l, b) iff b's clock has seen a's state. *)
  let hb k (a : Snapshot.vc) (b : Snapshot.vc) = b.clock.(k) >= a.clock.(k) in
  let fill ctx k =
    let c = Queue.pop queues.(k) in
    queued_words := !queued_words - (width + 1);
    cand.(k) <- Some c;
    Engine.charge_work ctx width;
    (* Compare the fresh candidate against every standing one;
       eliminate whichever side happened before the other. Standing
       candidates are pairwise concurrent by induction, so at most the
       fresh candidate dies, possibly killing several stale peers
       first. *)
    let l = ref 0 in
    while cand.(k) <> None && !l < width do
      (if !l <> k then
         match cand.(!l) with
         | Some other ->
             if hb k c other then cand.(k) <- None
             else if hb !l other c then cand.(!l) <- None
         | None -> ());
      incr l
    done
  in
  let rec drive ctx =
    let progressed = ref false in
    for k = 0 to width - 1 do
      if cand.(k) = None && not (Queue.is_empty queues.(k)) then begin
        fill ctx k;
        progressed := true
      end
    done;
    if !progressed then drive ctx
    else if Array.for_all Option.is_some cand then
      let states =
        Array.map
          (function Some (c : Snapshot.vc) -> c.state | None -> assert false)
          cand
      in
      announce ctx
        (Detection.Detected (Cut.make ~procs:(Spec.procs spec) ~states))
    else if
      Array.exists
        (fun k -> cand.(k) = None && Queue.is_empty queues.(k) && finished.(k))
        (Array.init width Fun.id)
    then announce ctx Detection.No_detection
  in
  let on_message ctx ~src msg =
    let k = Spec.index_of spec (src : int) in
    match msg with
    | Messages.Snap_vc s ->
        incr snapshots_seen;
        Queue.add s queues.(k);
        queued_words := !queued_words + width + 1;
        Engine.note_space ctx !queued_words;
        drive ctx
    | Messages.App_done ->
        finished.(k) <- true;
        drive ctx
    | _ -> failwith "Checker: unexpected message"
  in
  Engine.set_handler engine checker on_message;
  App_replay.install engine comp
    ~snapshots:(fun p ->
      if Spec.mem spec p then
        List.map
          (fun (s : Snapshot.vc) -> (s.state, Messages.Snap_vc s))
          (Snapshot.vc_stream comp spec ~proc:p)
      else [])
    ~snapshot_dst:(fun p -> if Spec.mem spec p then Some checker else None)
    ~spec_width:width ();
  let result = Run_common.finish engine ~outcome ~extras:Detection.no_extras in
  {
    result with
    extras = { result.extras with snapshots = !snapshots_seen };
  }
