(** Offline reference detectors.

    {!first_cut} runs the classic advance-the-cut WCP algorithm of
    Garg–Waldecker [7] directly on a recorded computation: keep one
    candidate state per spec process, repeatedly eliminate any
    candidate that happened before another candidate, and stop when the
    survivors are pairwise concurrent (detected) or some process runs
    out of candidates (no detection). Because a WCP is a {e linear}
    predicate, the eliminated states can never appear in any satisfying
    cut, so the algorithm finds the unique pointwise-least satisfying
    cut — the paper's "first cut".

    {!first_cut_brute} enumerates every combination of candidate
    states and returns the pointwise minimum of all satisfying cuts.
    Exponential; only for cross-validating {!first_cut} on small
    computations in the test suite. *)

open Wcp_trace

val first_cut : Computation.t -> Spec.t -> Detection.outcome

val first_cut_with :
  Computation.t ->
  procs:int array ->
  candidates:(int -> int list) ->
  Detection.outcome
(** Generalised advance-the-cut: detect over the given (sorted,
    distinct) processes with caller-supplied candidate-state lists
    (ascending). {!first_cut} is the instance where candidates are the
    recorded predicate-true states; {!Boolean.detect} supplies
    conjunctions of arbitrary local literals instead. *)

val first_cut_brute : Computation.t -> Spec.t -> Detection.outcome
(** @raise Invalid_argument if the candidate-combination count exceeds
    2 million (refuse rather than hang). *)

val satisfiable : Computation.t -> Spec.t -> bool
(** Does any consistent cut satisfy the WCP? ([first_cut] ≠
    [No_detection].) *)
