(** Shared wiring for the online detection runs.

    Engine process layout for a computation with [N] application
    processes:
    - ids [0 .. N-1]: application processes (trace replay);
    - ids [N .. 2N-1]: monitor of application process [p] is [N + p];
    - id [2N]: the centralized checker (for the baseline) or the
      multi-token leader (§3.5); idle otherwise.

    The default network gives every link an independent uniform latency
    and makes exactly the application→monitor and application→checker
    links FIFO, as required by §3.1; monitor-to-monitor traffic may be
    reordered freely. *)

open Wcp_trace
open Wcp_sim

val monitor_of : n:int -> int -> int
(** [monitor_of ~n p = n + p]. *)

val extra_id : n:int -> int
(** [2n]: checker / leader id. *)

val default_network : n:int -> Network.t

val make_engine :
  ?network:Network.t -> seed:int64 -> Computation.t -> Messages.t Engine.t
(** Engine with [2N + 1] processes and the default network. *)

val make_engine_n :
  ?network:Network.t -> seed:int64 -> n:int -> unit -> Messages.t Engine.t
(** Same, for live systems that have no recorded computation. *)

type announce = Detection.outcome -> unit
(** Callback a monitor invokes exactly once to report the result and
    halt the simulation. *)

val finish :
  Messages.t Engine.t ->
  outcome:Detection.outcome option ref ->
  extras:Detection.extras ->
  Detection.result
(** Run the engine and assemble the result.
    @raise Failure if the event queue drains without any announcement
    (a protocol bug, surfaced loudly for the test suite). *)
