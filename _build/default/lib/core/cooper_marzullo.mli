(** Cooper–Marzullo lattice detection (baseline [3]).

    Detects [Possibly(φ)] for an arbitrary global predicate [φ] by
    breadth-first search over the lattice of consistent global states,
    level by level (level = sum of state indices). This is the general
    but expensive baseline the paper contrasts with: the number of
    consistent cuts can be exponential in [N], which is exactly why
    WCP-specific algorithms matter.

    For a WCP the first satisfying cut is the unique satisfying cut on
    the lowest satisfying level, so when [detect] is given a WCP it
    returns the same first cut as the oracle (over all [N]
    processes). *)

open Wcp_trace

type exploration = {
  cuts_explored : int;  (** consistent cuts visited *)
  max_frontier : int;  (** widest BFS level *)
}

val detect :
  ?limit:int ->
  Computation.t ->
  (Cut.t -> bool) ->
  (Detection.outcome * exploration, exploration) result
(** [detect comp phi] searches for the first consistent cut (over all
    processes) satisfying [phi]. [limit] (default 5 million) bounds
    visited cuts; [Error] reports the exploration when exceeded. *)

val detect_wcp :
  ?limit:int ->
  Computation.t ->
  Spec.t ->
  (Detection.outcome * exploration, exploration) result
(** [detect] specialised to a WCP: [phi] is the conjunction of the spec
    processes' local predicates. *)

val definitely :
  ?limit:int ->
  Computation.t ->
  (Cut.t -> bool) ->
  (bool * exploration, exploration) result
(** [Definitely(φ)] (Cooper–Marzullo's stronger modality): does {e
    every} observation of the run — every path through the lattice of
    consistent cuts from the initial to the final cut — pass through a
    cut satisfying [φ]? Computed by the level-sweep: keep only the cuts
    reachable without meeting a [φ]-cut; [Definitely] holds iff that
    set empties before the final cut is reached. *)

val definitely_wcp :
  ?limit:int ->
  Computation.t ->
  Spec.t ->
  (bool * exploration, exploration) result
(** {!definitely} for the conjunction of the spec processes' local
    predicates. [Definitely ⇒ Possibly]; the reverse fails whenever the
    condition can be "dodged" by a different interleaving — the reason
    testbed reruns miss bugs that WCP detection catches. *)
