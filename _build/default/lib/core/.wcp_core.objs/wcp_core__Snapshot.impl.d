lib/core/snapshot.ml: Array Computation Dependence List Spec State Wcp_clocks Wcp_trace
