lib/core/checker_centralized.ml: App_replay Array Computation Cut Detection Engine Fun List Messages Option Queue Run_common Snapshot Spec Wcp_sim Wcp_trace
