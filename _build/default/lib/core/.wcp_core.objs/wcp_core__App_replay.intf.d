lib/core/app_replay.mli: Computation Engine Messages Wcp_sim Wcp_trace
