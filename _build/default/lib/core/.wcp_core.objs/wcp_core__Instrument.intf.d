lib/core/instrument.mli: Engine Messages Wcp_sim
