lib/core/checker_centralized.mli: Computation Detection Network Spec Wcp_sim Wcp_trace
