lib/core/token_vc.ml: App_replay Array Computation Cut Detection Engine List Logs Messages Printf Queue Run_common Snapshot Spec State Wcp_sim Wcp_trace
