lib/core/run_common.mli: Computation Detection Engine Messages Network Wcp_sim Wcp_trace
