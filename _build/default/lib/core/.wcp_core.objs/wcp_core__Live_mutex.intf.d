lib/core/live_mutex.mli: Computation Detection Instrument Wcp_trace
