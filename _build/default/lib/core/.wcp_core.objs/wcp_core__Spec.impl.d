lib/core/spec.ml: Array Computation Format Fun Wcp_clocks Wcp_trace
