lib/core/messages.mli: Format Snapshot
