lib/core/token_dd.mli: Computation Detection Engine Messages Network Spec Wcp_sim Wcp_trace
