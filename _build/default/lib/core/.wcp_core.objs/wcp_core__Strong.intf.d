lib/core/strong.mli: Computation Spec Wcp_trace
