lib/core/token_multi.ml: App_replay Array Computation Cut Detection Engine List Messages Queue Run_common Snapshot Spec Wcp_sim Wcp_trace
