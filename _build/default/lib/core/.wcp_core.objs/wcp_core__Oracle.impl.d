lib/core/oracle.ml: Array Computation Cut Detection List Spec State Wcp_trace
