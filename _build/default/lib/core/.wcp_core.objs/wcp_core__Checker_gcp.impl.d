lib/core/checker_gcp.ml: App_replay Array Computation Cut Detection Engine Fun Gcp List Messages Option Printf Queue Run_common Snapshot Wcp_sim Wcp_trace
