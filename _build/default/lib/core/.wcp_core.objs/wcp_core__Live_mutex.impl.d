lib/core/live_mutex.ml: Array Builder Computation Detection Engine Hashtbl Instrument Messages Queue Rng Run_common Token_dd Token_vc Wcp_sim Wcp_trace Wcp_util
