lib/core/detection.ml: Array Cut Format Spec State Stats Wcp_sim Wcp_trace
