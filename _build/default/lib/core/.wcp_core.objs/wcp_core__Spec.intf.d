lib/core/spec.mli: Computation Format Wcp_clocks Wcp_trace
