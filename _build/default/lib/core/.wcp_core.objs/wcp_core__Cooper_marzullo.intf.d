lib/core/cooper_marzullo.mli: Computation Cut Detection Spec Wcp_trace
