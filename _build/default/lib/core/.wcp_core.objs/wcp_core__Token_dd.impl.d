lib/core/token_dd.ml: App_replay Array Computation Cut Dependence Detection Engine Fun List Logs Messages Printf Queue Run_common Snapshot Wcp_clocks Wcp_sim Wcp_trace
