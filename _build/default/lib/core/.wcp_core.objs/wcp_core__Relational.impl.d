lib/core/relational.ml: Array Computation Cut Detection State Wcp_trace
