lib/core/boolean.mli: Computation Cut Format Wcp_trace
