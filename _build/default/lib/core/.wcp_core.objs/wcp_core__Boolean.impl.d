lib/core/boolean.ml: Array Computation Cut Detection Format Fun Hashtbl List Option Oracle Printf Spec State Token_vc Wcp_trace
