lib/core/gcp.mli: Computation Cut Detection Spec Wcp_trace
