lib/core/detection.mli: Cut Format Spec Stats Wcp_sim Wcp_trace
