lib/core/strong.ml: Array Computation List Spec State Wcp_trace
