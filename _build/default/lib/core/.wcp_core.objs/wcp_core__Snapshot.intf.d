lib/core/snapshot.mli: Computation Dependence Spec Wcp_clocks Wcp_trace
