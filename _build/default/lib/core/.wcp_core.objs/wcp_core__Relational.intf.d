lib/core/relational.mli: Computation Cut Detection Wcp_trace
