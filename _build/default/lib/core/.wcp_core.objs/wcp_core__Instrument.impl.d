lib/core/instrument.ml: Array Dependence Engine Messages Run_common Snapshot Wcp_clocks Wcp_sim
