lib/core/messages.ml: Array Format List Snapshot
