lib/core/token_multi.mli: Computation Detection Network Spec Wcp_sim Wcp_trace
