lib/core/oracle.mli: Computation Detection Spec Wcp_trace
