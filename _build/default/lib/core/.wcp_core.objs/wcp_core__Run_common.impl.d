lib/core/run_common.ml: Computation Detection Engine Network Wcp_sim Wcp_trace
