lib/core/token_vc.mli: Computation Detection Engine Messages Network Spec Wcp_sim Wcp_trace
