lib/core/cooper_marzullo.ml: Array Computation Cut Detection Hashtbl Queue Spec State Vector_clock Wcp_clocks Wcp_trace
