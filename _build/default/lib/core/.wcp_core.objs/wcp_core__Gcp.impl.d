lib/core/gcp.ml: Array Computation Cut Detection List Printf Spec State Wcp_trace
