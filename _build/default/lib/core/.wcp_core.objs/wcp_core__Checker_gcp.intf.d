lib/core/checker_gcp.mli: Computation Detection Gcp Network Spec Wcp_sim Wcp_trace
