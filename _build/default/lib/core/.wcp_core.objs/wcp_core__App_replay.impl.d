lib/core/app_replay.ml: Computation Engine Hashtbl Messages Rng Wcp_sim Wcp_trace Wcp_util
