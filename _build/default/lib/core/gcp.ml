open Wcp_trace

type channel_predicate = {
  name : string;
  src : int;
  dst : int;
  holds : Computation.message list -> bool;
  holds_count : (int -> bool) option;
      (* count-based form, when the predicate depends only on the
         number of in-flight messages (the online checker needs it) *)
  on_false : [ `Advance_src | `Advance_dst ];
}

let channel_predicate ~name ~src ~dst ~holds ~on_false =
  { name; src; dst; holds; holds_count = None; on_false }

let counting ~name ~src ~dst ~holds_count ~on_false =
  {
    name;
    src;
    dst;
    holds = (fun msgs -> holds_count (List.length msgs));
    holds_count = Some holds_count;
    on_false;
  }

let empty ~src ~dst =
  counting
    ~name:(Printf.sprintf "empty(%d->%d)" src dst)
    ~src ~dst
    ~holds_count:(fun k -> k = 0)
    ~on_false:`Advance_dst

let at_most k ~src ~dst =
  counting
    ~name:(Printf.sprintf "at-most-%d(%d->%d)" k src dst)
    ~src ~dst
    ~holds_count:(fun c -> c <= k)
    ~on_false:`Advance_dst

let at_least k ~src ~dst =
  counting
    ~name:(Printf.sprintf "at-least-%d(%d->%d)" k src dst)
    ~src ~dst
    ~holds_count:(fun c -> c >= k)
    ~on_false:`Advance_src

let name cp = cp.name

let endpoints cp = (cp.src, cp.dst)

let forced_endpoint cp =
  match cp.on_false with `Advance_src -> cp.src | `Advance_dst -> cp.dst

let count_based cp = cp.holds_count

(* A message has been sent at local state [s] iff its send event (which
   ends state [src_state]) precedes [s]: src_state < s. It has been
   received at local state [t] iff the receive event (which begins
   state [dst_state]) has happened: dst_state <= t. *)
let in_flight comp ~src ~dst ~cut =
  let w = Cut.width cut in
  if w <> Computation.n comp then
    invalid_arg "Gcp.in_flight: cut must span all processes";
  let state_of p = (Cut.state cut p).State.index in
  let s = state_of src and t = state_of dst in
  Array.to_list (Computation.messages comp)
  |> List.filter (fun (m : Computation.message) ->
         m.Computation.src = src && m.Computation.dst = dst
         && m.Computation.src_state < s
         && m.Computation.dst_state > t)

let holds_at comp cp ~cut = cp.holds (in_flight comp ~src:cp.src ~dst:cp.dst ~cut)

let check_channels comp channels =
  let n = Computation.n comp in
  List.iter
    (fun cp ->
      if cp.src < 0 || cp.src >= n || cp.dst < 0 || cp.dst >= n then
        invalid_arg "Gcp: channel endpoint out of range")
    channels

let candidates_for comp spec p =
  if Spec.mem spec p then Computation.candidates comp p
  else List.init (Computation.num_states comp p) (fun k -> k + 1)

let detect comp spec ~channels =
  check_channels comp channels;
  let n = Computation.n comp in
  let queues = Array.init n (fun p -> candidates_for comp spec p) in
  let head p = match queues.(p) with [] -> None | s :: _ -> Some s in
  let state_of p s = State.make ~proc:p ~index:s in
  let current_cut () =
    let states =
      Array.init n (fun p ->
          match head p with Some s -> s | None -> assert false)
    in
    Cut.over_all comp states
  in
  (* A head that happened before another head can never join a
     satisfying cut (Lemma 3.1(4) reasoning over all N processes). *)
  let find_hb_eliminable () =
    let rec scan p q =
      if p = n then None
      else if q = n then scan (p + 1) 0
      else if p = q then scan p (q + 1)
      else
        match (head p, head q) with
        | Some a, Some b
          when Computation.happened_before comp (state_of p a) (state_of q b)
          -> Some p
        | _ -> scan p (q + 1)
    in
    scan 0 0
  in
  let find_channel_eliminable () =
    let cut = current_cut () in
    let rec scan = function
      | [] -> None
      | cp :: rest ->
          if holds_at comp cp ~cut then scan rest
          else
            Some (match cp.on_false with `Advance_src -> cp.src | `Advance_dst -> cp.dst)
    in
    scan channels
  in
  let rec advance () =
    if Array.exists (fun q -> q = []) queues then Detection.No_detection
    else
      match find_hb_eliminable () with
      | Some p ->
          queues.(p) <- List.tl queues.(p);
          advance ()
      | None -> (
          (* The cut is consistent; channel states are well-defined. *)
          match find_channel_eliminable () with
          | Some p ->
              queues.(p) <- List.tl queues.(p);
              advance ()
          | None -> Detection.Detected (current_cut ()))
  in
  advance ()

let detect_brute comp spec ~channels =
  check_channels comp channels;
  let n = Computation.n comp in
  let cand = Array.init n (fun p -> Array.of_list (candidates_for comp spec p)) in
  if Array.exists (fun a -> Array.length a = 0) cand then Detection.No_detection
  else begin
    let combos =
      Array.fold_left (fun acc a -> acc * Array.length a) 1 cand
    in
    if combos > 2_000_000 then
      invalid_arg "Gcp.detect_brute: too many combinations";
    let best = ref None in
    let pick = Array.make n 0 in
    let rec explore k =
      if k = n then begin
        let states = Array.mapi (fun p j -> cand.(p).(j)) pick in
        let cut = Cut.over_all comp states in
        if
          Cut.consistent comp cut
          && List.for_all (fun cp -> holds_at comp cp ~cut) channels
        then
          best :=
            Some
              (match !best with
              | None -> states
              | Some b -> Array.map2 min b states)
      end
      else
        for j = 0 to Array.length cand.(k) - 1 do
          pick.(k) <- j;
          explore (k + 1)
        done
    in
    explore 0;
    match !best with
    | None -> Detection.No_detection
    | Some states -> Detection.Detected (Cut.over_all comp states)
  end
