(** A weak conjunctive predicate specification.

    A WCP is the conjunction of local predicates of [n <= N] processes
    (paper §2). The per-state truth values already live in the
    {!Wcp_trace.Computation}; the specification contributes the subset
    of processes whose predicates participate. Processes outside the
    subset have the trivially-true local predicate. *)

open Wcp_trace

type t

val make : Computation.t -> int array -> t
(** [make comp procs] — [procs] must be sorted, duplicate-free process
    ids of [comp].
    @raise Invalid_argument otherwise. *)

val all : Computation.t -> t
(** The WCP over every process ([n = N]). *)

val procs : t -> int array
(** The spec processes, sorted ascending. Do not mutate. *)

val width : t -> int
(** The paper's [n]. *)

val proc : t -> int -> int
(** [proc t k] is the process id at spec index [k]. *)

val mem : t -> int -> bool
(** Does process [p] carry a local predicate? *)

val index_of : t -> int -> int
(** Spec index of process [p].
    @raise Not_found if [p] is not a spec process. *)

val project : t -> Wcp_clocks.Vector_clock.t -> int array
(** Restrict a full [N]-sized vector clock to the spec processes: the
    [n]-sized vectors that the vector-clock algorithm's snapshots and
    token actually carry (this is what makes its message size [O(n)]
    rather than [O(N)]). *)

val pp : Format.formatter -> t -> unit
