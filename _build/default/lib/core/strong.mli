(** Strong conjunctive predicates: [Definitely(l₁ ∧ … ∧ lₙ)] by
    interval overlap.

    The paper detects {e weak} conjunctive predicates — the name is in
    contrast to the {e strong} ones of the companion work (Garg &
    Waldecker, "Detection of Strong Unstable Predicates in Distributed
    Programs", TPDS 1996): a strong predicate holds when {e every}
    observation of the run passes through a cut where the conjunction
    is true, i.e. [Definitely(∧ lᵢ)].

    The interval characterisation: group each process's predicate-true
    states into maximal {e intervals}. A set of intervals, one per spec
    process, witnesses the strong predicate iff for every ordered pair
    [(i, j)] the beginning of [i]'s interval happened before the end of
    [j]'s — no observation can then leave any interval before entering
    them all. Detection is an advance-the-cut over interval queues: if
    [¬(begin(Iᵢ) → end(Iⱼ))] then no current-or-later interval of [i]
    can reach [end(Iⱼ)] either, so [Iⱼ] is eliminated. Cost
    [O(n² · intervals)] — exponentially cheaper than sweeping the cut
    lattice, which is exactly why the characterisation matters.

    {!definitely} is cross-validated against
    {!Cooper_marzullo.definitely_wcp} (level sweep) and, transitively,
    against brute-force observation enumeration in the test suite. *)

open Wcp_trace

type interval = {
  proc : int;
  first : int;  (** first state of the maximal predicate-true run *)
  last : int;  (** last state of that run *)
}

val intervals : Computation.t -> proc:int -> interval list
(** Maximal runs of consecutive predicate-true states, in order. *)

val definitely : Computation.t -> Spec.t -> interval array option
(** [Some witness] (one interval per spec process, spec order) iff the
    strong conjunctive predicate holds — every observation passes
    through a cut where all the spec processes' predicates are
    simultaneously true. *)

val holds : Computation.t -> Spec.t -> bool
(** [definitely ≠ None]. *)
