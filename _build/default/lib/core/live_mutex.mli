(** A live, instrumented application: coordinator-based mutual
    exclusion under online WCP monitoring.

    This is the paper's Fig. 1 picture end to end, with no recorded
    trace anywhere in the loop: clients and a coordinator exchange
    request/grant/release messages inside the simulation engine, each
    application process runs the Fig. 2 / §4.1 instrumentation
    ({!Instrument}), and the monitor processes of {!Token_vc} or
    {!Token_dd} detect [CS_1 ∧ CS_2] online. A race in the coordinator
    (probability [p_bug] per grant decision while another grant is
    outstanding) makes violations possible.

    For validation the run also records itself through
    {!Wcp_trace.Builder}; the recorded computation is returned so tests
    can replay the oracle on it and confirm the online verdict. The
    monitors never see the recording. *)

open Wcp_trace

type outcome = {
  online : Detection.outcome;
      (** what the online monitors decided; for [Dd] mode the cut spans
          all processes *)
  recorded : Computation.t;
      (** the ground-truth computation, recorded on the side *)
  wcp_procs : int array;  (** the monitored processes (clients 1 and 2) *)
  sim_time : float;
  detection_time : float option;
      (** simulated time at which the online verdict landed, [None] if
          the run ended first *)
}

val run :
  ?p_bug:float ->
  mode:Instrument.mode ->
  clients:int ->
  rounds:int ->
  seed:int64 ->
  unit ->
  outcome
(** @raise Invalid_argument for [clients < 2] or [rounds < 1]. *)
