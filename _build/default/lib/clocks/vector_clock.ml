type t = int array

type relation = Before | After | Concurrent | Equal

let make ~n ~owner =
  assert (n > 0 && owner >= 0 && owner < n);
  let v = Array.make n 0 in
  v.(owner) <- 1;
  v

let of_array a =
  Array.iter (fun x -> assert (x >= 0)) a;
  Array.copy a

let to_array t = Array.copy t

let size = Array.length

let get t i = t.(i)

let tick t ~owner =
  let v = Array.copy t in
  v.(owner) <- v.(owner) + 1;
  v

let merge a b =
  assert (Array.length a = Array.length b);
  Array.mapi (fun i x -> max x b.(i)) a

let receive t ~owner ~msg = tick (merge t msg) ~owner

let leq a b =
  assert (Array.length a = Array.length b);
  let rec go i = i = Array.length a || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b = a = b

let lt a b = leq a b && not (equal a b)

let relation a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let concurrent a b = relation a b = Concurrent

let compare = Stdlib.compare

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
