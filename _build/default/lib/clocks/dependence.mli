(** Direct dependences (paper §4.1).

    In the direct-dependence algorithm each application process keeps a
    scalar clock equal to the 1-based index of its current local state
    (incremented on every send and receive). A message sent by [P_j]
    from state [k] carries the tag [k]; when [P_i] receives it, [P_i]
    records the direct dependence [(j, k)]: every subsequent state of
    [P_i] directly depends on state [(j, k)].

    An {!accumulator} gathers dependences between local snapshots; a
    snapshot drains the accumulator (the paper: "the dependence list is
    reinitialized to be empty after generating the local snapshot"). *)

type t = { src : int; clock : int }
(** A single direct dependence: a message sent by process [src] from
    its local state [clock] was received before the state carrying this
    dependence. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Renders as [(src:3,clk:7)]. *)

type accumulator

val create_accumulator : unit -> accumulator

val record : accumulator -> t -> unit
(** Append a dependence (O(1)). *)

val drain : accumulator -> t list
(** Return all recorded dependences in arrival order and reset the
    accumulator. *)

val peek : accumulator -> t list
(** Current contents without resetting. *)

val count : accumulator -> int
