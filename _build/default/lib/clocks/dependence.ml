type t = { src : int; clock : int }

let equal a b = a.src = b.src && a.clock = b.clock

let compare = Stdlib.compare

let pp ppf { src; clock } = Format.fprintf ppf "(src:%d,clk:%d)" src clock

type accumulator = { mutable rev_deps : t list; mutable n : int }

let create_accumulator () = { rev_deps = []; n = 0 }

let record acc d =
  acc.rev_deps <- d :: acc.rev_deps;
  acc.n <- acc.n + 1

let drain acc =
  let deps = List.rev acc.rev_deps in
  acc.rev_deps <- [];
  acc.n <- 0;
  deps

let peek acc = List.rev acc.rev_deps

let count acc = acc.n
