lib/clocks/dependence.mli: Format
