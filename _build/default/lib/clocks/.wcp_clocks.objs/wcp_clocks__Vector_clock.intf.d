lib/clocks/vector_clock.mli: Format
