lib/clocks/dependence.ml: Format List Stdlib
