(* Run every detector in the library on one and the same computation
   and print a cost table — a miniature of the paper's §3.4/§4.4
   analysis. The detected first cut must be identical everywhere; the
   costs differ exactly the way the analysis predicts:

   - checker [7]:   all work/space on one process;
   - token-vc (§3): same totals, spread O(nm) per process;
   - multi-token (§3.5): more messages, less sequential time;
   - token-dd (§4): totals O(Nm) — cheapest per process, but all N
     processes participate;
   - Cooper–Marzullo [3]: explores the cut lattice (can be huge). *)

open Wcp_trace
open Wcp_sim
open Wcp_core

let () =
  let seed = 2024L in
  let comp =
    Generator.random
      ~params:{ Generator.n = 8; sends_per_process = 12; p_pred = 0.3; p_recv = 0.5 }
      ~seed ()
  in
  let spec = Spec.make comp [| 0; 2; 4; 6 |] in
  Format.printf "%a@." Computation.pp_summary comp;
  Format.printf "%a (n = %d of N = %d)@.@." Spec.pp spec (Spec.width spec)
    (Computation.n comp);

  let oracle = Oracle.first_cut comp spec in
  Format.printf "oracle: %a@.@." Detection.pp_outcome oracle;

  let rows =
    [
      ("checker [7]", Checker_centralized.detect ~seed comp spec, `Spec);
      ("token-vc (§3)", Token_vc.detect ~seed comp spec, `Spec);
      ("multi g=2 (§3.5)", Token_multi.detect ~groups:2 ~seed comp spec, `Spec);
      ("token-dd (§4)", Token_dd.detect ~seed comp spec, `Full);
      ( "token-dd ∥ (§4.5)",
        Token_dd.detect ~parallel:true ~seed comp spec,
        `Full );
    ]
  in
  Format.printf "%-18s %8s %10s %9s %9s %9s %7s@." "algorithm" "msgs" "bits"
    "work" "max-work" "max-space" "time";
  List.iter
    (fun (name, (r : Detection.result), scope) ->
      let projected =
        match scope with
        | `Spec -> r.outcome
        | `Full -> Detection.project_outcome spec r.outcome
      in
      assert (Detection.outcome_equal projected oracle);
      Format.printf "%-18s %8d %10d %9d %9d %9d %7.1f@." name
        (Stats.total_sent r.stats) (Stats.total_bits r.stats)
        (Stats.total_work r.stats) (Stats.max_work r.stats)
        (Stats.max_space r.stats) r.sim_time)
    rows;

  (match Cooper_marzullo.detect_wcp comp spec with
  | Ok (outcome, expl) ->
      assert (
        Detection.outcome_equal (Detection.project_outcome spec outcome) oracle);
      Format.printf "%-18s explored %d consistent cuts (frontier %d)@."
        "cooper-marzullo" expl.Cooper_marzullo.cuts_explored
        expl.Cooper_marzullo.max_frontier
  | Error expl ->
      Format.printf "%-18s gave up after %d cuts@." "cooper-marzullo"
        expl.Cooper_marzullo.cuts_explored);
  Format.printf "@.all detectors agree on the first cut.@."
