examples/channel_monitor.ml: Builder Computation Cut Detection Format Gcp List Oracle Spec Wcp_core Wcp_trace
