examples/distributed_debugging.mli:
