examples/database_locks.mli:
