examples/channel_monitor.mli:
