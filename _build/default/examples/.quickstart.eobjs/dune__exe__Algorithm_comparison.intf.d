examples/algorithm_comparison.mli:
