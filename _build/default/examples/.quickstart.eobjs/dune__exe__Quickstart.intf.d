examples/quickstart.mli:
