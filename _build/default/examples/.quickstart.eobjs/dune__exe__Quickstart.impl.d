examples/quickstart.ml: Builder Computation Cut Detection Format Oracle Spec Token_dd Token_vc Wcp_core Wcp_trace
