examples/algorithm_comparison.ml: Checker_centralized Computation Cooper_marzullo Detection Format Generator List Oracle Spec Stats Token_dd Token_multi Token_vc Wcp_core Wcp_sim Wcp_trace
