examples/boolean_predicates.ml: Boolean Builder Cooper_marzullo Cut Detection Format List Render Wcp_core Wcp_trace
