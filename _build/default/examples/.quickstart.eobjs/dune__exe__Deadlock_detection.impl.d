examples/deadlock_detection.ml: Cut Detection Format Int64 Oracle Spec Strong Token_dd Token_vc Wcp_core Wcp_trace Workloads
