examples/boolean_predicates.mli:
