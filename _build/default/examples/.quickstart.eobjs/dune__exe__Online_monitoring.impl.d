examples/online_monitoring.ml: Cut Detection Format Instrument List Live_mutex Oracle Spec Wcp_core Wcp_trace
