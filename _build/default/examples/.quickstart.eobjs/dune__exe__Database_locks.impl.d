examples/database_locks.ml: Checker_centralized Computation Cut Detection Format Int64 Run_common Spec Token_dd Wcp_core Wcp_sim Wcp_trace Workloads
