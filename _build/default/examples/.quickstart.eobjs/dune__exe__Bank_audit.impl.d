examples/bank_audit.ml: Array Builder Computation Cut Detection Format Fun List Relational Wcp_core Wcp_trace Wcp_util
