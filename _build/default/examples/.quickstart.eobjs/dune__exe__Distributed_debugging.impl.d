examples/distributed_debugging.ml: Array Computation Cut Detection Format Oracle Spec State Token_vc Wcp_clocks Wcp_core Wcp_trace Workloads
