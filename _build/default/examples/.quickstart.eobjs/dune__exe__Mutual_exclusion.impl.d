examples/mutual_exclusion.ml: Computation Cut Detection Format Int64 Spec State Token_vc Wcp_core Wcp_trace Workloads
