  $ wcpdetect generate -n 4 -m 5 --p-pred 0.4 --seed 9 -o run.trace
  $ wcpdetect detect run.trace -a oracle
  $ wcpdetect detect run.trace -a token-vc | cut -d'|' -f1
  $ wcpdetect detect run.trace -a token-dd | cut -d'|' -f1
  $ wcpdetect detect run.trace -a checker | cut -d'|' -f1
  $ wcpdetect detect run.trace -a multi-token --groups 2 | cut -d'|' -f1
  $ wcpdetect detect run.trace -a oracle --procs 1,3
  $ wcpdetect workload mutex --size 3 --rounds 2 --p-bug 0.5 --seed 4 -o mutex.trace
  $ wcpdetect detect mutex.trace -a oracle --procs 1,2
  $ wcpdetect generate -n 2 -m 1 --p-pred 1.0 --seed 2 -o tiny.trace
  $ wcpdetect render tiny.trace
  $ wcpdetect render tiny.trace -f dot | head -4
  $ wcpdetect gcp tiny.trace -c atleast1:0-1 --procs 0
  $ wcpdetect gcp tiny.trace -c atleast1:0-1 --procs 0 --online | cut -d'|' -f1
  $ wcpdetect lowerbound -n 4 -m 8
  $ wcpdetect live --mode vc --p-bug 0.0 --clients 2 --rounds 2 --seed 5
  $ wcpdetect workload philosophers --size 3 --rounds 2 --seed 6 -o ph.trace
  $ wcpdetect detect ph.trace -a oracle --procs 0,1,2
  $ wcpdetect detect ph.trace -a strong --procs 0,1,2
  $ wcpdetect detect tiny.trace -a strong --procs 0,1
  $ wcpdetect detect tiny.trace -a cooper-marzullo
  $ wcpdetect compare ph.trace --procs 0,1,2 | head -3
