open Wcp_trace

let qtest = Helpers.qtest

let tiny () =
  let b = Builder.create ~n:2 in
  Builder.set_pred b ~proc:1 true;
  let m = Builder.send b ~src:0 ~dst:1 in
  Builder.set_pred b ~proc:0 true;
  Builder.recv b ~dst:1 m;
  Builder.finish b

let test_ascii_golden () =
  let comp = tiny () in
  Alcotest.(check string) "plain"
    "P0: (1). !0>1 (2)*\nP1: (1)* ?0 (2).\nmessages: 0:0->1\n"
    (Render.ascii comp)

let test_ascii_with_cut () =
  let comp = tiny () in
  let cut = Cut.make ~procs:[| 0; 1 |] ~states:[| 2; 1 |] in
  Alcotest.(check string) "cut marked"
    "P0: (1). !0>1 (2)*<\nP1: (1)*< ?0 (2).\nmessages: 0:0->1\n"
    (Render.ascii ~cut comp)

let test_ascii_no_messages () =
  let comp =
    Computation.of_raw ~ops:[| [] |] ~pred:[| [| false |] |]
  in
  Alcotest.(check string) "no message table" "P0: (1).\n" (Render.ascii comp)

let test_dot_structure () =
  let comp = tiny () in
  let dot = Render.dot comp in
  let must_contain what =
    if
      not
        (String.length dot >= String.length what
        &&
        let re = Str.regexp_string what in
        try
          ignore (Str.search_forward re dot 0);
          true
        with Not_found -> false)
    then Alcotest.failf "dot output missing %S" what
  in
  List.iter must_contain
    [
      "digraph computation";
      "subgraph cluster_p0";
      "subgraph cluster_p1";
      "p0_s1 -> p0_s2";
      "p0_s1 -> p1_s2 [style=dashed";
      "fillcolor=palegreen";
    ]

let prop_ascii_mentions_every_state =
  qtest ~count:100 "ascii names every state and message"
    Helpers.gen_small_comp (fun comp ->
      let text = Render.ascii comp in
      let contains what =
        let re = Str.regexp_string what in
        try
          ignore (Str.search_forward re text 0);
          true
        with Not_found -> false
      in
      let states_ok = ref true in
      for p = 0 to Computation.n comp - 1 do
        for s = 1 to Computation.num_states comp p do
          if not (contains (Printf.sprintf "(%d)" s)) then states_ok := false
        done
      done;
      !states_ok
      && Array.for_all
           (fun (m : Computation.message) ->
             contains (Printf.sprintf "%d:%d->%d" m.Computation.id m.Computation.src m.Computation.dst))
           (Computation.messages comp))

let prop_dot_parses_balanced =
  qtest ~count:100 "dot output has balanced braces" Helpers.gen_small_comp
    (fun comp ->
      let dot = Render.dot comp in
      let depth = ref 0 and ok = ref true in
      String.iter
        (fun c ->
          if c = '{' then incr depth
          else if c = '}' then begin
            decr depth;
            if !depth < 0 then ok := false
          end)
        dot;
      !ok && !depth = 0)

let () =
  Alcotest.run "render"
    [
      ( "ascii",
        [
          Alcotest.test_case "golden" `Quick test_ascii_golden;
          Alcotest.test_case "with cut" `Quick test_ascii_with_cut;
          Alcotest.test_case "no messages" `Quick test_ascii_no_messages;
          prop_ascii_mentions_every_state;
        ] );
      ( "dot",
        [ Alcotest.test_case "structure" `Quick test_dot_structure;
          prop_dot_parses_balanced ] );
    ]
