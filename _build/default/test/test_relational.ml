open Wcp_trace
open Wcp_core

let qtest = Helpers.qtest

(* Deterministic synthetic valuation: a hash of (proc, state) in a
   small range, so minima are non-trivial but reproducible. *)
let hash_valuation ~salt : Relational.valuation =
 fun ~proc ~state -> (((proc * 31) + (state * 17) + salt) mod 13) - 4

(* Exhaustive reference: enumerate every full-width state combination,
   filter to consistent cuts, take the minimum sum. *)
let brute_min comp v ~procs =
  let w = Array.length procs in
  let best = ref None in
  let pick = Array.make w 0 in
  let rec explore k =
    if k = w then begin
      let cut = Cut.make ~procs ~states:(Array.copy pick) in
      if Cut.consistent comp cut then begin
        let s = Relational.sum_at comp v cut in
        match !best with Some s' when s' <= s -> () | _ -> best := Some s
      end
    end
    else
      for cand = 1 to Computation.num_states comp procs.(k) do
        pick.(k) <- cand;
        explore (k + 1)
      done
  in
  explore 0;
  Option.get !best

let test_pair_example () =
  (* P0 sends to P1; value = state index. Consistent pairs: (1,1),
     (1,2)? (0,1)->(1,2) via the message, so (1,2) is NOT concurrent...
     check the minimum is value(0,1)+value(1,1) = 2. *)
  let b = Builder.create ~n:2 in
  let m = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 m;
  let comp = Builder.finish b in
  let v : Relational.valuation = fun ~proc:_ ~state -> state in
  let s, cut = Relational.min_sum_pair comp v ~p:0 ~q:1 in
  Alcotest.(check int) "min sum" 2 s;
  Alcotest.(check string) "witness" "{0:1 1:1}" (Cut.to_string cut)

let test_pair_validation () =
  let comp = Helpers.build_comp (3, 3, 50, 50, 1) in
  let v : Relational.valuation = fun ~proc:_ ~state -> state in
  (match Relational.min_sum_pair comp v ~p:1 ~q:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p = q should be rejected");
  match Relational.min_sum_pair comp v ~p:0 ~q:9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range should be rejected"

let prop_pair_equals_brute =
  qtest ~count:200 "two-process minimum = exhaustive enumeration"
    QCheck2.Gen.(pair Helpers.gen_small_comp (int_range 0 100))
    (fun (comp, salt) ->
      if Computation.n comp < 2 then true
      else
        let v = hash_valuation ~salt in
        let s, cut = Relational.min_sum_pair comp v ~p:0 ~q:1 in
        Cut.consistent comp cut
        && Relational.sum_at comp v cut = s
        && s = brute_min comp v ~procs:[| 0; 1 |])

let prop_general_equals_brute =
  qtest ~count:150 "general minimum = exhaustive enumeration"
    QCheck2.Gen.(pair Helpers.gen_small_comp (int_range 0 100))
    (fun (comp, salt) ->
      let v = hash_valuation ~salt in
      let procs = Array.init (Computation.n comp) Fun.id in
      match Relational.min_sum comp v ~procs with
      | Error `Limit -> true
      | Ok (s, cut) ->
          Cut.consistent comp cut
          && Relational.sum_at comp v cut = s
          && s = brute_min comp v ~procs)

let prop_pair_agrees_with_general =
  qtest ~count:150 "pair evaluator = general evaluator on width 2"
    QCheck2.Gen.(pair Helpers.gen_medium_comp (int_range 0 100))
    (fun (comp, salt) ->
      if Computation.n comp < 2 then true
      else
        let v = hash_valuation ~salt in
        let s_pair, _ = Relational.min_sum_pair comp v ~p:0 ~q:1 in
        match Relational.min_sum comp v ~procs:[| 0; 1 |] with
        | Ok (s_gen, _) -> s_pair = s_gen
        | Error `Limit -> true)

let prop_max_is_negated_min =
  qtest ~count:100 "max_sum = -(min of negation)"
    QCheck2.Gen.(pair Helpers.gen_small_comp (int_range 0 100))
    (fun (comp, salt) ->
      let v = hash_valuation ~salt in
      let procs = Array.init (Computation.n comp) Fun.id in
      match
        ( Relational.max_sum comp v ~procs,
          Relational.min_sum comp (fun ~proc ~state -> -v ~proc ~state) ~procs )
      with
      | Ok (mx, _), Ok (mn, _) -> mx = -mn
      | Error `Limit, Error `Limit -> true
      | _ -> false)

let prop_connects_to_wcp =
  (* With the 1/0 valuation of the recorded flags, the WCP over all
     processes holds in some cut iff the MAXIMUM of the sum is n. *)
  qtest ~count:150 "Σ flags = n iff the WCP is detectable"
    Helpers.gen_small_comp (fun comp ->
      let n = Computation.n comp in
      let procs = Array.init n Fun.id in
      let v = Relational.of_pred comp () in
      match Relational.max_sum comp v ~procs with
      | Error `Limit -> true
      | Ok (mx, _) ->
          let detectable = Oracle.satisfiable comp (Spec.all comp) in
          (mx = n) = detectable)

let test_possibly_sum_leq () =
  let b = Builder.create ~n:2 in
  let m = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 m;
  let comp = Builder.finish b in
  (* Balances: P0 starts at 10 then transfers 6 away; P1 starts at 0
     then receives 6. The combined balance is 10 at every consistent
     cut except while the transfer is in flight, where it is 4. *)
  let v : Relational.valuation =
   fun ~proc ~state ->
    match (proc, state) with
    | 0, 1 -> 10
    | 0, 2 -> 4
    | 1, 1 -> 0
    | 1, 2 -> 6
    | _ -> assert false
  in
  (match Relational.possibly_sum_leq comp v ~procs:[| 0; 1 |] ~k:9 with
  | Ok (Detection.Detected cut) ->
      Alcotest.(check string) "in-flight window found" "{0:2 1:1}"
        (Cut.to_string cut);
      Alcotest.(check int) "sum there" 4 (Relational.sum_at comp v cut)
  | _ -> Alcotest.fail "the transfer window must be detectable");
  match Relational.possibly_sum_leq comp v ~procs:[| 0; 1 |] ~k:3 with
  | Ok Detection.No_detection -> ()
  | _ -> Alcotest.fail "the combined balance never drops below 4"

let test_limit () =
  let comp = Helpers.build_comp (5, 10, 50, 50, 3) in
  let v : Relational.valuation = fun ~proc:_ ~state -> state in
  match
    Relational.min_sum ~limit:10 comp v ~procs:(Array.init 5 Fun.id)
  with
  | Error `Limit -> ()
  | Ok _ -> Alcotest.fail "tiny limit must trigger"

let () =
  Alcotest.run "relational"
    [
      ( "pair",
        [
          Alcotest.test_case "example" `Quick test_pair_example;
          Alcotest.test_case "validation" `Quick test_pair_validation;
          prop_pair_equals_brute;
          prop_pair_agrees_with_general;
        ] );
      ( "general",
        [
          prop_general_equals_brute;
          prop_max_is_negated_min;
          prop_connects_to_wcp;
          Alcotest.test_case "bank balance window" `Quick test_possibly_sum_leq;
          Alcotest.test_case "limit" `Quick test_limit;
        ] );
    ]
