open Wcp_trace
open Wcp_core
open Wcp_lowerbound

let qtest = Helpers.qtest

(* ------------------------------------------------------------------ *)
(* Detector against real computations                                  *)
(* ------------------------------------------------------------------ *)

let prop_detector_matches_oracle =
  qtest ~count:250 "queue-model detector = oracle satisfiability"
    Helpers.gen_medium_comp (fun comp ->
      let spec = Spec.all comp in
      let world = World.of_computation comp spec in
      let answer, _ = Detector.run world in
      match (answer, Oracle.first_cut comp spec) with
      | Detector.Antichain heads, Detection.Detected cut ->
          (* The surviving heads are exactly the first cut. *)
          Array.for_all2 ( = ) heads
            (Array.init (Cut.width cut) (fun k -> (Cut.state cut k).State.index))
      | Detector.No_antichain, Detection.No_detection -> true
      | _ -> false)

let prop_detector_deletion_budget =
  qtest ~count:150 "detector deletes at most all candidate states"
    Helpers.gen_medium_comp (fun comp ->
      let spec = Spec.all comp in
      let world = World.of_computation comp spec in
      let _, trace = Detector.run world in
      let total_candidates =
        Array.fold_left
          (fun acc p -> acc + List.length (Computation.candidates comp p))
          0 (Spec.procs spec)
      in
      trace.Detector.deletions <= total_candidates
      && trace.Detector.rounds <= total_candidates + 1)

(* ------------------------------------------------------------------ *)
(* Adversary forces Ω(nm)                                              *)
(* ------------------------------------------------------------------ *)

let test_adversary_forces_bound () =
  List.iter
    (fun (n, m) ->
      let world, stats = Adversary.make ~n ~m in
      let answer, trace = Detector.run world in
      (match answer with
      | Detector.No_antichain -> ()
      | Detector.Antichain _ ->
          Alcotest.failf "n=%d m=%d: adversary should never concede" n m);
      let forced = (n * m) - n + 1 in
      Alcotest.(check int)
        (Printf.sprintf "n=%d m=%d deletions" n m)
        forced trace.Detector.deletions;
      Alcotest.(check int) "adversary saw every deletion" forced
        stats.Adversary.deletions;
      (* One deletion per round: rounds >= nm - n. *)
      if trace.Detector.rounds < (n * m) - n then
        Alcotest.failf "n=%d m=%d: only %d rounds" n m trace.Detector.rounds)
    [ (2, 1); (2, 5); (3, 4); (4, 10); (8, 8); (16, 4); (5, 40) ]

let test_adversary_serializes () =
  (* The detector deletes one head per S2 against the adversary even
     though it is allowed to delete many. *)
  let world, _ = Adversary.make ~n:6 ~m:6 in
  let _, trace = Detector.run world in
  Alcotest.(check int) "rounds = deletions (one per round)"
    trace.Detector.deletions trace.Detector.rounds

let test_adversary_comparison_count () =
  let n = 5 and m = 4 in
  let world, stats = Adversary.make ~n ~m in
  let _, trace = Detector.run world in
  Alcotest.(check int) "n(n-1)/2 comparisons per round"
    (trace.Detector.rounds * (n * (n - 1) / 2))
    stats.Adversary.comparisons_answered

let test_adversary_rejects_cheating () =
  let world, _ = Adversary.make ~n:3 ~m:3 in
  (* Deleting a head the adversary has not declared dominated: queue 2
     is never the low queue initially. *)
  match world.World.delete_heads [ 2 ] with
  | exception Adversary.Cheating _ -> ()
  | () -> Alcotest.fail "unsound deletion must raise Cheating"

let test_adversary_rejects_bulk_deletion () =
  let world, _ = Adversary.make ~n:3 ~m:3 in
  match world.World.delete_heads [ 0; 1 ] with
  | exception Adversary.Cheating _ -> ()
  | () -> Alcotest.fail "parallel deletion must raise Cheating"

let test_adversary_validation () =
  (match Adversary.make ~n:1 ~m:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=1 rejected");
  match Adversary.make ~n:3 ~m:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "m=0 rejected"

let test_world_of_computation_heads () =
  let b = Builder.create ~n:2 in
  Builder.set_pred b ~proc:0 true;
  Builder.set_pred b ~proc:1 true;
  let m = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 m;
  Builder.set_pred b ~proc:1 true;
  let comp = Builder.finish b in
  let spec = Spec.all comp in
  let w = World.of_computation comp spec in
  Alcotest.(check int) "remaining 0" 1 (w.World.remaining 0);
  Alcotest.(check int) "remaining 1" 2 (w.World.remaining 1);
  Alcotest.(check int) "head id" 1 (w.World.head_id 1);
  (match w.World.compare_heads 0 1 with
  | World.Incomparable -> ()
  | _ -> Alcotest.fail "initial states are concurrent");
  w.World.delete_heads [ 1 ];
  Alcotest.(check int) "head advanced" 2 (w.World.head_id 1);
  match w.World.compare_heads 0 1 with
  | World.Precedes -> ()
  | _ -> Alcotest.fail "(0,1) precedes (1,2) via the message"

(* ------------------------------------------------------------------ *)
(* Alternative deletion policies                                       *)
(* ------------------------------------------------------------------ *)

let prop_policies_agree =
  qtest ~count:150 "every deletion policy reaches the same verdict"
    QCheck2.Gen.(pair Helpers.gen_medium_comp (int_range 0 1000))
    (fun (comp, pseed) ->
      let spec = Spec.all comp in
      let verdict policy =
        let world = World.of_computation comp spec in
        match Detector.run ~policy world with
        | Detector.Antichain heads, _ -> Some heads
        | Detector.No_antichain, _ -> None
      in
      let greedy = verdict Detector.Greedy in
      let sequential = verdict Detector.One_at_a_time in
      let random =
        verdict
          (Detector.Random_subset (Wcp_util.Rng.create (Int64.of_int pseed)))
      in
      greedy = sequential && greedy = random)

let test_policies_against_adversary () =
  List.iter
    (fun (name, policy) ->
      let world, _ = Adversary.make ~n:6 ~m:8 in
      let answer, trace = Detector.run ~policy world in
      (match answer with
      | Detector.No_antichain -> ()
      | Detector.Antichain _ -> Alcotest.failf "%s: adversary conceded" name);
      let bound = (6 * 8) - 6 in
      if trace.Detector.deletions < bound then
        Alcotest.failf "%s: only %d deletions (< %d)" name
          trace.Detector.deletions bound)
    [
      ("greedy", Detector.Greedy);
      ("one-at-a-time", Detector.One_at_a_time);
      ("random", Detector.Random_subset (Wcp_util.Rng.create 4L));
    ]

let test_sequential_costs_more_rounds () =
  (* On a real computation the greedy policy can delete several heads
     per round; one-at-a-time never can, so it needs at least as many
     rounds. *)
  let comp = Helpers.build_comp (5, 10, 60, 50, 12) in
  let spec = Spec.all comp in
  let _, greedy = Detector.run ~policy:Detector.Greedy (World.of_computation comp spec) in
  let _, seq =
    Detector.run ~policy:Detector.One_at_a_time (World.of_computation comp spec)
  in
  Alcotest.(check bool) "sequential rounds >= greedy rounds" true
    (seq.Detector.rounds >= greedy.Detector.rounds);
  Alcotest.(check int) "same total deletions" greedy.Detector.deletions
    seq.Detector.deletions

let () =
  Alcotest.run "lowerbound"
    [
      ( "detector",
        [ prop_detector_matches_oracle; prop_detector_deletion_budget ] );
      ( "adversary",
        [
          Alcotest.test_case "forces nm - n + 1 deletions" `Quick
            test_adversary_forces_bound;
          Alcotest.test_case "serializes deletions" `Quick
            test_adversary_serializes;
          Alcotest.test_case "comparison count" `Quick
            test_adversary_comparison_count;
          Alcotest.test_case "rejects cheating" `Quick
            test_adversary_rejects_cheating;
          Alcotest.test_case "rejects bulk deletion" `Quick
            test_adversary_rejects_bulk_deletion;
          Alcotest.test_case "validation" `Quick test_adversary_validation;
        ] );
      ( "world",
        [ Alcotest.test_case "computation heads" `Quick
            test_world_of_computation_heads ] );
      ( "policies",
        [
          prop_policies_agree;
          Alcotest.test_case "all forced by the adversary" `Quick
            test_policies_against_adversary;
          Alcotest.test_case "sequential needs more rounds" `Quick
            test_sequential_costs_more_rounds;
        ] );
    ]
