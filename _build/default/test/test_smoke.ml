open Wcp_trace
open Wcp_core

let check_agreement ~seed ~params ~spec_width =
  let comp = Generator.random ~params ~seed () in
  let rng = Wcp_util.Rng.create (Int64.add seed 99L) in
  let procs =
    Generator.random_procs rng ~n:(Computation.n comp) ~width:spec_width
  in
  let spec = Spec.make comp procs in
  let expected = Oracle.first_cut comp spec in
  let vc = Token_vc.detect ~invariant_checks:true ~seed comp spec in
  if not (Detection.outcome_equal vc.outcome expected) then
    Alcotest.failf "token_vc mismatch seed=%Ld: got %a want %a" seed
      Detection.pp_outcome vc.outcome Detection.pp_outcome expected;
  let chk = Checker_centralized.detect ~seed comp spec in
  if not (Detection.outcome_equal chk.outcome expected) then
    Alcotest.failf "checker mismatch seed=%Ld: got %a want %a" seed
      Detection.pp_outcome chk.outcome Detection.pp_outcome expected;
  let multi = Token_multi.detect ~groups:(min 3 spec_width) ~seed comp spec in
  if not (Detection.outcome_equal multi.outcome expected) then
    Alcotest.failf "multi mismatch seed=%Ld: got %a want %a" seed
      Detection.pp_outcome multi.outcome Detection.pp_outcome expected;
  let dd = Token_dd.detect ~seed comp spec in
  let dd_proj = Detection.project_outcome spec dd.outcome in
  if not (Detection.outcome_equal dd_proj expected) then
    Alcotest.failf "dd mismatch seed=%Ld: got %a want %a" seed
      Detection.pp_outcome dd_proj Detection.pp_outcome expected;
  let ddp = Token_dd.detect ~parallel:true ~seed comp spec in
  let ddp_proj = Detection.project_outcome spec ddp.outcome in
  if not (Detection.outcome_equal ddp_proj expected) then
    Alcotest.failf "dd-par mismatch seed=%Ld: got %a want %a" seed
      Detection.pp_outcome ddp_proj Detection.pp_outcome expected

let smoke () =
  for s = 1 to 30 do
    let seed = Int64.of_int s in
    let params =
      { Generator.n = 4; sends_per_process = 6; p_pred = 0.4; p_recv = 0.5 }
    in
    check_agreement ~seed ~params ~spec_width:3
  done

let smoke_full_width () =
  for s = 31 to 50 do
    let seed = Int64.of_int s in
    let params =
      { Generator.n = 5; sends_per_process = 5; p_pred = 0.5; p_recv = 0.5 }
    in
    check_agreement ~seed ~params ~spec_width:5
  done

let () =
  Alcotest.run "smoke"
    [
      ( "agreement",
        [
          Alcotest.test_case "random width-3" `Quick smoke;
          Alcotest.test_case "random full-width" `Quick smoke_full_width;
        ] );
    ]
