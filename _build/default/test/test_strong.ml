open Wcp_trace
open Wcp_core

let qtest = Helpers.qtest

(* ------------------------------------------------------------------ *)
(* Interval extraction                                                 *)
(* ------------------------------------------------------------------ *)

let test_intervals () =
  let comp =
    Computation.of_raw
      ~ops:[| [ Computation.Send { dst = 1; msg = 0 };
                Computation.Send { dst = 1; msg = 1 };
                Computation.Send { dst = 1; msg = 2 } ];
              [ Computation.Recv { msg = 0 };
                Computation.Recv { msg = 1 };
                Computation.Recv { msg = 2 } ] |]
      ~pred:[| [| true; true; false; true |]; [| false; false; false; false |] |]
  in
  let ivs = Strong.intervals comp ~proc:0 in
  Alcotest.(check (list (pair int int)))
    "maximal runs"
    [ (1, 2); (4, 4) ]
    (List.map (fun iv -> (iv.Strong.first, iv.Strong.last)) ivs);
  Alcotest.(check (list (pair int int))) "no runs" []
    (List.map (fun iv -> (iv.Strong.first, iv.Strong.last))
       (Strong.intervals comp ~proc:1))

(* ------------------------------------------------------------------ *)
(* Hand cases                                                          *)
(* ------------------------------------------------------------------ *)

(* Whole-process-true partner: l1 always true forces overlap with any
   l0-true state (no messages needed). *)
let test_always_true_partner () =
  let comp =
    Computation.of_raw
      ~ops:[| [ Computation.Send { dst = 1; msg = 0 } ];
              [ Computation.Recv { msg = 0 } ] |]
      ~pred:[| [| false; true |]; [| true; true |] |]
  in
  Alcotest.(check bool) "definitely" true (Strong.holds comp (Spec.all comp))

(* Two concurrent single-state windows with no causal forcing: possibly
   but not definitely. *)
let test_dodgeable_window () =
  let ops = [| [ Computation.Send { dst = 1; msg = 0 };
                 Computation.Send { dst = 1; msg = 1 } ];
               [ Computation.Recv { msg = 0 };
                 Computation.Recv { msg = 1 } ] |] in
  let pred = [| [| false; true; false |]; [| false; true; false |] |] in
  let comp = Computation.of_raw ~ops ~pred in
  let spec = Spec.all comp in
  Alcotest.(check bool) "possibly" true (Oracle.satisfiable comp spec);
  Alcotest.(check bool) "not definitely" false (Strong.holds comp spec)

(* Causally forced overlap: P0's window starts before P1 can end its
   own (message into the window) and vice versa. *)
let test_forced_overlap () =
  (* P0: true from the start until after receiving back; P1: true from
     its receive to the end. begin(I0) = bottom, end(I1) = top: the
     pairwise conditions hold trivially. *)
  let b = Builder.create ~n:2 in
  Builder.set_pred b ~proc:0 true;
  let m = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 m;
  Builder.set_pred b ~proc:1 true;
  let m2 = Builder.send b ~src:1 ~dst:0 in
  Builder.recv b ~dst:0 m2;
  Builder.set_pred b ~proc:0 true;
  Builder.set_pred b ~proc:1 true;
  let comp = Builder.finish b in
  (* P0 pred: states 1 true, 2 false... set_pred marked state 1 and 3;
     P1: states 2 and 3. Hmm: P0 intervals [1,1],[3,3]; P1 [2,3]. *)
  let spec = Spec.all comp in
  Alcotest.(check bool) "definitely" true (Strong.holds comp spec)

let test_witness_shape () =
  let comp =
    Computation.of_raw
      ~ops:[| []; [] |]
      ~pred:[| [| true |]; [| true |] |]
  in
  match Strong.definitely comp (Spec.all comp) with
  | Some w ->
      Alcotest.(check int) "one interval per process" 2 (Array.length w);
      Array.iter
        (fun iv ->
          Alcotest.(check int) "covers the single state" 1 iv.Strong.first)
        w
  | None -> Alcotest.fail "single-state all-true run is definite"

let test_single_process () =
  let comp =
    Computation.of_raw ~ops:[| [] |] ~pred:[| [| true |] |]
  in
  Alcotest.(check bool) "n=1: definitely iff some candidate" true
    (Strong.holds comp (Spec.all comp));
  let comp =
    Computation.of_raw ~ops:[| [] |] ~pred:[| [| false |] |]
  in
  Alcotest.(check bool) "n=1 negative" false
    (Strong.holds comp (Spec.all comp))

(* ------------------------------------------------------------------ *)
(* Cross-validation against the lattice sweep                          *)
(* ------------------------------------------------------------------ *)

let prop_equals_lattice =
  qtest ~count:400 "interval algorithm = Cooper-Marzullo level sweep"
    Helpers.gen_small_comp (fun comp ->
      let spec = Spec.all comp in
      match Cooper_marzullo.definitely_wcp comp spec with
      | Error _ -> true
      | Ok (expected, _) -> Strong.holds comp spec = expected)

let prop_equals_lattice_subsets =
  qtest ~count:250 "interval algorithm = lattice sweep on sub-specs"
    QCheck2.Gen.(pair Helpers.gen_small_comp (int_range 0 10_000))
    (fun (comp, pseed) ->
      let rng = Wcp_util.Rng.create (Int64.of_int pseed) in
      let width = 1 + Wcp_util.Rng.int rng (Computation.n comp) in
      let procs = Generator.random_procs rng ~n:(Computation.n comp) ~width in
      let spec = Spec.make comp procs in
      match Cooper_marzullo.definitely_wcp comp spec with
      | Error _ -> true
      | Ok (expected, _) -> Strong.holds comp spec = expected)

let prop_definitely_implies_possibly =
  qtest ~count:200 "strong implies weak" Helpers.gen_medium_comp (fun comp ->
      let spec = Spec.all comp in
      (not (Strong.holds comp spec)) || Oracle.satisfiable comp spec)

let prop_witness_is_valid =
  qtest ~count:200 "witness intervals satisfy the pairwise condition"
    Helpers.gen_small_comp (fun comp ->
      let spec = Spec.all comp in
      match Strong.definitely comp spec with
      | None -> true
      | Some w ->
          Array.for_all
            (fun (iv : Strong.interval) ->
              (* each witness interval is predicate-true throughout *)
              let ok = ref true in
              for s = iv.Strong.first to iv.Strong.last do
                if not (Computation.pred comp (State.make ~proc:iv.Strong.proc ~index:s))
                then ok := false
              done;
              !ok)
            w)

let () =
  Alcotest.run "strong"
    [
      ( "intervals",
        [ Alcotest.test_case "extraction" `Quick test_intervals ] );
      ( "hand-cases",
        [
          Alcotest.test_case "always-true partner" `Quick
            test_always_true_partner;
          Alcotest.test_case "dodgeable window" `Quick test_dodgeable_window;
          Alcotest.test_case "forced overlap" `Quick test_forced_overlap;
          Alcotest.test_case "witness shape" `Quick test_witness_shape;
          Alcotest.test_case "single process" `Quick test_single_process;
        ] );
      ( "cross-validation",
        [
          prop_equals_lattice;
          prop_equals_lattice_subsets;
          prop_definitely_implies_possibly;
          prop_witness_is_valid;
        ] );
    ]
