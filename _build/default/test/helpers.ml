(* Shared generators and utilities for the test suites. *)

open Wcp_trace

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A random computation described by a compact tuple so qcheck can
   generate and print it: (n, sends_per_process, pred%, recv%, seed). *)
type comp_params = int * int * int * int * int

let gen_comp_params ~max_n ~max_sends : comp_params QCheck2.Gen.t =
  QCheck2.Gen.(
    tup5 (int_range 2 max_n) (int_range 0 max_sends) (int_range 0 100)
      (int_range 10 90) (int_range 0 1_000_000))

let build_comp ((n, sends, pred_pct, recv_pct, seed) : comp_params) =
  Generator.random
    ~params:
      {
        Generator.n;
        sends_per_process = sends;
        p_pred = float_of_int pred_pct /. 100.;
        p_recv = float_of_int recv_pct /. 100.;
      }
    ~seed:(Int64.of_int seed) ()

let gen_small_comp = QCheck2.Gen.map build_comp (gen_comp_params ~max_n:4 ~max_sends:5)

let gen_medium_comp =
  QCheck2.Gen.map build_comp (gen_comp_params ~max_n:6 ~max_sends:12)

(* All (proc, state) pairs of a computation. *)
let all_states comp =
  List.concat
    (List.init (Computation.n comp) (fun p ->
         List.init (Computation.num_states comp p) (fun k ->
             State.make ~proc:p ~index:(k + 1))))

(* A deterministic pseudo-random full-width cut of a computation. *)
let random_full_cut comp seed =
  let rng = Wcp_util.Rng.create (Int64.of_int seed) in
  Array.init (Computation.n comp) (fun p ->
      1 + Wcp_util.Rng.int rng (Computation.num_states comp p))

let outcome = Alcotest.testable Wcp_core.Detection.pp_outcome
    Wcp_core.Detection.outcome_equal
