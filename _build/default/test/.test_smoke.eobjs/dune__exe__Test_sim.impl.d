test/test_sim.ml: Alcotest Buffer Engine List Network Printf Stats String Wcp_sim Wcp_util
