test/test_oracle.ml: Alcotest Array Builder Computation Cooper_marzullo Cut Detection Fun Generator Hashtbl Helpers Int64 Oracle QCheck2 Spec State Wcp_core Wcp_trace Wcp_util
