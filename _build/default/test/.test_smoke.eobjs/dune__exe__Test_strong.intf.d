test/test_strong.mli:
