test/test_lowerbound.ml: Adversary Alcotest Array Builder Computation Cut Detection Detector Helpers Int64 List Oracle Printf QCheck2 Spec State Wcp_core Wcp_lowerbound Wcp_trace Wcp_util World
