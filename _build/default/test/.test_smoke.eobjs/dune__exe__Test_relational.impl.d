test/test_relational.ml: Alcotest Array Builder Computation Cut Detection Fun Helpers Option Oracle QCheck2 Relational Spec Wcp_core Wcp_trace
