test/test_render.ml: Alcotest Array Builder Computation Cut Helpers List Printf Render Str String Wcp_trace
