test/test_util.ml: Alcotest Array Fun Heap Int64 List QCheck2 QCheck_alcotest Rng Wcp_util
