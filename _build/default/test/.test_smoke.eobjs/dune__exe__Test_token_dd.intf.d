test/test_token_dd.mli:
