test/test_generator.ml: Alcotest Array Computation Cut Detection Generator Helpers Int64 List Oracle Printf Spec Trace_codec Wcp_core Wcp_trace Wcp_util Workloads
