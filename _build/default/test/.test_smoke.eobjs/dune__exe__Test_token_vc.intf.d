test/test_token_vc.mli:
