test/test_smoke.ml: Alcotest Checker_centralized Computation Detection Generator Int64 Oracle Spec Token_dd Token_multi Token_vc Wcp_core Wcp_trace Wcp_util
