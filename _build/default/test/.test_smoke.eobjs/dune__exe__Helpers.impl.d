test/helpers.ml: Alcotest Array Computation Generator Int64 List QCheck2 QCheck_alcotest State Wcp_core Wcp_trace Wcp_util
