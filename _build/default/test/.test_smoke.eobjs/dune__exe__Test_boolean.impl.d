test/test_boolean.ml: Alcotest Boolean Computation Cooper_marzullo Cut Detection Helpers Int64 List Oracle Printf QCheck2 Spec State Wcp_core Wcp_trace Wcp_util
