test/test_computation.ml: Alcotest Array Builder Bytes Computation Cut Dependence Filename Fun Helpers List QCheck2 State String Sys Trace_codec Vector_clock Wcp_clocks Wcp_trace
