test/test_corpus.ml: Alcotest Checker_centralized Cut Detection Filename Fun List Oracle Spec Sys Token_dd Token_multi Token_vc Trace_codec Wcp_core Wcp_trace
