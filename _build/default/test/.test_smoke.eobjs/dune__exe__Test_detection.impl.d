test/test_detection.ml: Alcotest Cut Detection Format Helpers List Messages Network Run_common Snapshot Spec Str Token_vc Wcp_clocks Wcp_core Wcp_sim Wcp_trace Wcp_util
