test/test_checker_multi.mli:
