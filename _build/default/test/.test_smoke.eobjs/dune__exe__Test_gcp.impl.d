test/test_gcp.ml: Alcotest Array Builder Checker_gcp Computation Cut Detection Gcp Helpers Int64 List Oracle QCheck2 Spec Wcp_core Wcp_trace Wcp_util
