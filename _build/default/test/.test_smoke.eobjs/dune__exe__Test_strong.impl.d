test/test_strong.ml: Alcotest Array Builder Computation Cooper_marzullo Generator Helpers Int64 List Oracle QCheck2 Spec State Strong Wcp_core Wcp_trace Wcp_util
