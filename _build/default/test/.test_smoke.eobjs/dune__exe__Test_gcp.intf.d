test/test_gcp.mli:
