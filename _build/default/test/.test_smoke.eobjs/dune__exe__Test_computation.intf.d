test/test_computation.mli:
