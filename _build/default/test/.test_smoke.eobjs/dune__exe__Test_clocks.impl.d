test/test_clocks.ml: Alcotest Array Dependence Fun List QCheck2 QCheck_alcotest Vector_clock Wcp_clocks
