test/test_token_vc.ml: Alcotest Array Computation Cut Detection Fun Generator Helpers Int64 List Network Oracle QCheck2 Run_common Spec Stats Token_vc Wcp_core Wcp_sim Wcp_trace Wcp_util Workloads
