(* Distributed breakpoints: halt "when l_0 ∧ l_1 ∧ … first holds".

   This is the debugging application that motivates online WCP
   detection (Miller–Choi [11], Garg–Waldecker [7]): a breakpoint over
   a global condition must fire at the *first consistent cut* where the
   condition holds, not at whatever wall-clock moment an observer
   notices it. We set a breakpoint on a client–server system for the
   condition "every client is blocked on the server", run detection,
   and print the frozen global state the debugger would present. *)

open Wcp_trace
open Wcp_core

let describe_client_state comp (s : State.t) =
  (* Reconstruct what the process was doing in that interval from its
     event script. *)
  let ops = Array.of_list (Computation.ops comp s.State.proc) in
  if s.State.index - 2 >= 0 && s.State.index - 2 < Array.length ops then
    match ops.(s.State.index - 2) with
    | Computation.Send _ -> "just sent a request, blocked on the reply"
    | Computation.Recv _ -> "just received a reply"
  else "at its initial state"

let () =
  let seed = 7L in
  let w = Workloads.client_server ~clients:4 ~requests:3 ~seed in
  let comp = w.Workloads.comp in
  let spec = Spec.make comp w.Workloads.procs in
  Format.printf "breakpoint: all %d clients simultaneously blocked@.@."
    (Spec.width spec);

  match (Token_vc.detect ~seed comp spec).Detection.outcome with
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Format.printf "breakpoint never fired in this run.@."
  | Detection.Detected cut ->
      Format.printf "breakpoint fired at the first such cut: %a@.@." Cut.pp cut;
      Format.printf "frozen global state:@.";
      for k = 0 to Cut.width cut - 1 do
        let s = Cut.state cut k in
        Format.printf "  client P%d in state %d: %s@." s.State.proc
          s.State.index
          (describe_client_state comp s);
        Format.printf "    vector clock %a@." Wcp_clocks.Vector_clock.pp
          (Computation.vc comp s)
      done;
      (* A debugger must show a *consistent* snapshot: verify no causal
         edge crosses the displayed cut. *)
      assert (Cut.consistent comp cut);
      Format.printf "@.(cut verified consistent: no message crosses it)@.";
      (* Minimality: no earlier cut satisfies the breakpoint, so this
         really is the first time the condition held. *)
      (match Oracle.first_cut comp spec with
      | Detection.Detected first -> assert (Cut.equal first cut)
      | Detection.No_detection | Detection.Undetectable_crashed _ ->
          assert false);
      Format.printf "(cut verified minimal: it is the FIRST such state)@."
