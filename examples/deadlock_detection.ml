(* Potential-deadlock detection as a WCP: dining philosophers.

   Philosopher i picks up fork i (left) and then fork (i+1) mod k
   (right). The circular-wait condition — "every philosopher holds its
   left fork and is waiting for the right" — is exactly a weak
   conjunctive predicate. A run that never actually deadlocks (our
   philosophers time out and put the left fork back) may still pass
   through a consistent cut where the circular wait held: a schedule
   that did not time out WOULD have deadlocked there. WCP detection
   finds that cut; wall-clock observation almost never does. *)

open Wcp_trace
open Wcp_core

let () =
  Format.printf "== 5 philosophers, patient (long contention windows) ==@.";
  let risky = ref 0 in
  for s = 1 to 10 do
    let w =
      Workloads.dining_philosophers ~philosophers:5 ~meals:3 ~patience:0.8
        ~seed:(Int64.of_int s)
    in
    let spec = Spec.make w.Workloads.comp w.Workloads.procs in
    let r = Token_vc.detect ~seed:(Int64.of_int s) w.Workloads.comp spec in
    match r.Detection.outcome with
    | Detection.Detected cut ->
        incr risky;
        Format.printf "  seed %2d: circular wait at %a@." s Cut.pp cut
    | Detection.No_detection | Detection.Undetectable_crashed _ ->
        Format.printf "  seed %2d: no circular-wait state in this run@." s
  done;
  Format.printf "%d of 10 runs passed through a potential deadlock.@.@." !risky;

  (* Show the evidence for one run: the detected cut is consistent and
     every philosopher's local predicate (holds-left-not-right) is true
     in it. *)
  let rec witness s =
    let w =
      Workloads.dining_philosophers ~philosophers:4 ~meals:2 ~patience:0.9
        ~seed:(Int64.of_int s)
    in
    let spec = Spec.make w.Workloads.comp w.Workloads.procs in
    if s < 50 && not (Oracle.satisfiable w.Workloads.comp spec) then
      witness (s + 1)
    else (s, w)
  in
  let s, w = witness 1 in
  let comp = w.Workloads.comp in
  let spec = Spec.make comp w.Workloads.procs in
  (match Oracle.first_cut comp spec with
  | Detection.Detected cut ->
      Format.printf "witness (4 philosophers, seed %d): %a@." s Cut.pp cut;
      assert (Cut.satisfies comp cut);
      Format.printf "  each philosopher holds its left fork in this cut;@.";
      Format.printf "  no message crosses the cut (verified consistent).@.";
      (* The dd algorithm — all 2k processes participate, including the
         fork agents — finds the same cut. *)
      let dd = Token_dd.detect ~seed:(Int64.of_int s) comp spec in
      assert (
        Detection.outcome_equal
          (Detection.project_outcome spec dd.Detection.outcome)
          (Detection.Detected cut));
      Format.printf "  (confirmed by the direct-dependence algorithm)@."
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Format.printf "witness run was lucky; try another seed@.");

  (* Was the circular wait AVOIDABLE? Possibly(WCP) says some schedule
     reaches it; Definitely (the strong predicate) would mean every
     schedule does. With timeouts it is never definite. *)
  (match Strong.definitely comp spec with
  | Some _ ->
      Format.printf "  moreover DEFINITE: every schedule hits the wait@."
  | None ->
      Format.printf
        "  but not definite: a lucky schedule avoids it (Strong check)@.");

  (* Impatience narrows (but does not eliminate) the window: giving up
     on first contention still leaves the moment where all left forks
     were granted concurrently. *)
  Format.printf "@.== impatience narrows the window (patience = 0.0) ==@.";
  let risky = ref 0 in
  for s = 1 to 10 do
    let w =
      Workloads.dining_philosophers ~philosophers:5 ~meals:3 ~patience:0.0
        ~seed:(Int64.of_int (100 + s))
    in
    let spec = Spec.make w.Workloads.comp w.Workloads.procs in
    if Oracle.satisfiable w.Workloads.comp spec then incr risky
  done;
  Format.printf "%d of 10 impatient runs had a circular-wait cut.@." !risky
