(* Beyond conjunctions: arbitrary boolean global predicates, and the
   Possibly / Definitely distinction.

   §2 of the paper notes that any boolean predicate reduces to WCP
   detection. This example monitors a replicated pair (a primary and a
   backup serving reads behind a failover supervisor) for the safety
   condition

      SPLIT-BRAIN  =  primary-active ∧ backup-active
      DARK         =  ¬primary-active ∧ ¬backup-active
      BAD          =  SPLIT-BRAIN ∨ DARK

   which is not a conjunction — but its DNF is two WCPs. We detect each
   disjunct's first cut, then ask the stronger Cooper–Marzullo question:
   was BAD merely *possible* (some interleaving passes through it) or
   *definite* (every interleaving does)? *)

open Wcp_trace
open Wcp_core

(* Build a failover run: the supervisor (proc 0) orders the backup up
   before ordering the primary down — classic overlap window. Being
   "active" spans the states between the activation and deactivation
   messages. *)
let failover_run () =
  let b = Builder.create ~n:3 in
  let primary = 1 and backup = 2 in
  (* Primary starts active (its predicate managed via flags below). *)
  Builder.set_pred b ~proc:primary true;
  (* Supervisor tells the backup to activate... *)
  let up = Builder.send b ~src:0 ~dst:backup in
  Builder.recv b ~dst:backup up;
  Builder.set_pred b ~proc:backup true;
  let ack_up = Builder.send b ~src:backup ~dst:0 in
  Builder.recv b ~dst:0 ack_up;
  (* ...and only then tells the primary to deactivate. *)
  let down = Builder.send b ~src:0 ~dst:primary in
  Builder.recv b ~dst:primary down;
  (* primary now inactive: pred defaults to false in the new state *)
  let ack_down = Builder.send b ~src:primary ~dst:0 in
  Builder.recv b ~dst:0 ack_down;
  Builder.finish b

let () =
  let comp = failover_run () in
  print_string (Render.ascii comp);
  Format.printf "@.";
  let active p = Boolean.of_recorded_pred comp ~proc:p in
  let split_brain = Boolean.and_ [ active 1; active 2 ] in
  let dark = Boolean.and_ [ Boolean.not_ (active 1); Boolean.not_ (active 2) ] in
  let bad = Boolean.or_ [ split_brain; dark ] in
  Format.printf "monitoring: %a@.@." Boolean.pp bad;

  let v = Boolean.detect comp bad in
  List.iter
    (fun (d : Boolean.disjunct_result) ->
      let name = if d.Boolean.index = 0 then "split-brain" else "dark" in
      match d.Boolean.first_cut with
      | Some cut -> Format.printf "%-12s possible, first at %a@." name Cut.pp cut
      | None -> Format.printf "%-12s impossible in this run@." name)
    v.Boolean.disjuncts;

  (* Was the bad condition avoidable, or did every interleaving hit it? *)
  (match Cooper_marzullo.definitely comp (fun cut -> Boolean.eval bad comp cut) with
  | Ok (true, _) ->
      Format.printf
        "@.Definitely(BAD): every observation passes through a bad state —@.\
        \  the overlap window is inherent to this failover ordering.@."
  | Ok (false, _) ->
      Format.printf "@.BAD was possible but avoidable (scheduling luck).@."
  | Error _ -> Format.printf "@.lattice too large@.");

  (* Sanity: Possibly from the DNF must agree with the lattice search. *)
  (match Cooper_marzullo.detect comp (fun cut -> Boolean.eval bad comp cut) with
  | Ok (Detection.Detected _, _) -> assert v.Boolean.possibly
  | Ok ((Detection.No_detection | Detection.Undetectable_crashed _), _) ->
      assert (not v.Boolean.possibly)
  | Error _ -> ());
  Format.printf "@.(DNF-based verdict cross-checked against the cut lattice)@."
