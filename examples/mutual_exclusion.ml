(* Paper §2, example 1: detecting a mutual-exclusion violation.

   A coordinator grants a critical section to clients; an injected race
   makes it occasionally issue a grant while another is outstanding.
   Whether any run violates CS_1 ∧ CS_2 is exactly a WCP question: the
   violation is a global condition no single process can observe.

   We sweep seeds, report which runs contain a violation, and show the
   vector-clock token algorithm pinpointing the first violating cut —
   something a testbed would miss whenever the overlap does not happen
   to manifest in wall-clock time. *)

open Wcp_trace
open Wcp_core

let detect_run ~p_bug ~seed =
  let w = Workloads.mutual_exclusion ~clients:3 ~rounds:4 ~p_bug ~seed in
  let spec = Spec.make w.Workloads.comp w.Workloads.procs in
  let r = Token_vc.detect ~seed w.Workloads.comp spec in
  (w, r)

let () =
  Format.printf "== correct coordinator (p_bug = 0) ==@.";
  for s = 1 to 5 do
    let _, r = detect_run ~p_bug:0.0 ~seed:(Int64.of_int s) in
    Format.printf "  seed %d: %a@." s Detection.pp_outcome r.Detection.outcome
  done;

  Format.printf "@.== racy coordinator (p_bug = 0.4) ==@.";
  let violations = ref 0 in
  for s = 1 to 10 do
    let w, r = detect_run ~p_bug:0.4 ~seed:(Int64.of_int s) in
    (match r.Detection.outcome with
    | Detection.Detected cut ->
        incr violations;
        Format.printf "  seed %2d: VIOLATION at %a" s Cut.pp cut;
        (* Show the causal witness: both clients' critical-section
           states are concurrent. *)
        let a = Cut.state cut 0 and b = Cut.state cut 1 in
        Format.printf "  (%a || %a: %b)@." State.pp a State.pp b
          (Computation.concurrent w.Workloads.comp a b)
    | Detection.No_detection | Detection.Undetectable_crashed _ ->
        Format.printf "  seed %2d: this run happened to stay safe@." s)
  done;
  Format.printf "@.%d of 10 racy runs violated mutual exclusion;@." !violations;
  Format.printf "every violation was caught with its first violating cut.@."
