(* Generalized conjunctive predicates (the [6] extension): conditions
   that mention CHANNEL states, not just process states.

   Scenario: clients fire requests at a server. The operations team
   wants to catch the global condition

      "the server is idle  ∧  requests are piling up in its channel"

   — a scheduling pathology no process can see alone: the server finds
   its inbox empty every time it looks, yet requests exist, in flight.
   "Server idle" is a local predicate; "≥ k requests in flight" is a
   channel predicate (linear: only the server's progress can drain the
   channel, only senders can fill it). *)

open Wcp_trace
open Wcp_core

(* Build a run where the pathology genuinely occurs: the server keeps
   busy with client 1's chatter while clients 2 and 3's requests sit in
   flight. States of the server between communication events with the
   predicate "idle" (here: flagged when it is between work bursts). *)
let build () =
  let b = Builder.create ~n:4 in
  let server = 0 in
  (* Server does a work burst with client 1. *)
  let r1 = Builder.send b ~src:1 ~dst:server in
  Builder.recv b ~dst:server r1;
  let a1 = Builder.send b ~src:server ~dst:1 in
  Builder.recv b ~dst:1 a1;
  (* Server now idles; flag the predicate. *)
  Builder.set_pred b ~proc:server true;
  (* Meanwhile clients 2 and 3 each send a request that stays in
     flight for a while. *)
  let r2 = Builder.send b ~src:2 ~dst:server in
  let r3 = Builder.send b ~src:3 ~dst:server in
  (* Much later the server finally receives them. *)
  Builder.recv b ~dst:server r2;
  Builder.recv b ~dst:server r3;
  let a2 = Builder.send b ~src:server ~dst:2 in
  let a3 = Builder.send b ~src:server ~dst:3 in
  Builder.recv b ~dst:2 a2;
  Builder.recv b ~dst:3 a3;
  Builder.finish b

let () =
  let comp = build () in
  let spec = Spec.make comp [| 0 |] in
  Format.printf "%a@.@." Computation.pp_summary comp;

  (* Plain WCP: "server idle" alone fires as soon as the server idles,
     whether or not anything is queued — not what ops wants. *)
  (match Oracle.first_cut comp spec with
  | Detection.Detected cut ->
      Format.printf "WCP \"server idle\" alone:            fires at %a@."
        Cut.pp cut
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Format.printf "WCP alone: never@.");

  (* GCP: idle AND >= 2 requests in flight from clients 2 and 3. *)
  let channels =
    [ Gcp.at_least 1 ~src:2 ~dst:0; Gcp.at_least 1 ~src:3 ~dst:0 ]
  in
  (match Gcp.detect comp spec ~channels with
  | Detection.Detected cut ->
      Format.printf "GCP \"idle ∧ requests in flight\":   fires at %a@." Cut.pp
        cut;
      List.iter
        (fun cp ->
          Format.printf "    %s holds: %b@." (Gcp.name cp)
            (Gcp.holds_at comp cp ~cut))
        channels;
      Format.printf "    in flight to server at the cut: %d message(s)@."
        (List.length (Gcp.in_flight comp ~src:2 ~dst:0 ~cut)
        + List.length (Gcp.in_flight comp ~src:3 ~dst:0 ~cut))
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Format.printf "GCP: pathology absent in this run@.");

  (* A condition that cannot happen here: idle with 2 requests in
     flight from client 1 (client 1 only ever has one outstanding). *)
  match Gcp.detect comp spec ~channels:[ Gcp.at_least 2 ~src:1 ~dst:0 ] with
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Format.printf "@.control: \"idle ∧ 2 in flight from client 1\" correctly never fires@."
  | Detection.Detected _ -> assert false
