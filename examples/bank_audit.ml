(* Relational predicates (Tomlinson–Garg [13], cited in §1): auditing
   conservation of money.

   Branches hold balances and wire money to each other. The global
   invariant "Σ balances = total" is violated at no *consistent* cut
   only if in-flight transfers are counted; the audit questions are:

     - what is the lowest combined on-books balance any consistent
       global snapshot could have seen? (money in flight)
     - could the books ever have shown MORE than the true total?
       (they must not: that would be double counting)

   Both are min/max-sum relational predicates, not conjunctions. *)

open Wcp_trace
open Wcp_core

let branches = 4
let initial_balance = 100

(* Build a run of random transfers, tracking every branch's balance in
   every local state. Returns the computation and the valuation. *)
let build ~transfers ~seed =
  let rng = Wcp_util.Rng.create seed in
  let b = Builder.create ~n:branches in
  (* balances.(p) = list of balances per state, reversed *)
  let balances = Array.make branches [ initial_balance ] in
  let current p = List.hd balances.(p) in
  let push p x = balances.(p) <- x :: balances.(p) in
  let in_flight = ref [] in
  for _ = 1 to transfers do
    (* Either launch a transfer or land one. *)
    if !in_flight <> [] && Wcp_util.Rng.bool rng then begin
      let (dst, amount, handle), rest =
        let l = !in_flight in
        let k = Wcp_util.Rng.int rng (List.length l) in
        let rec take acc i = function
          | [] -> assert false
          | x :: r -> if i = k then (x, List.rev_append acc r) else take (x :: acc) (i + 1) r
        in
        take [] 0 l
      in
      in_flight := rest;
      Builder.recv b ~dst handle;
      push dst (current dst + amount)
    end
    else begin
      let src = Wcp_util.Rng.int rng branches in
      let dst = (src + 1 + Wcp_util.Rng.int rng (branches - 1)) mod branches in
      let amount = 1 + Wcp_util.Rng.int rng (max 1 (current src / 2)) in
      let handle = Builder.send b ~src ~dst in
      push src (current src - amount);
      in_flight := (dst, amount, handle) :: !in_flight
    end
  done;
  (* Land the stragglers. *)
  List.iter
    (fun (dst, amount, handle) ->
      Builder.recv b ~dst handle;
      push dst (current dst + amount))
    !in_flight;
  let comp = Builder.finish b in
  let tables = Array.map (fun l -> Array.of_list (List.rev l)) balances in
  let valuation : Relational.valuation =
   fun ~proc ~state -> tables.(proc).(state - 1)
  in
  (comp, valuation)

let () =
  let comp, balance = build ~transfers:14 ~seed:11L in
  Format.printf "%a@." Computation.pp_summary comp;
  let total = branches * initial_balance in
  let procs = Array.init branches Fun.id in
  Format.printf "true total: %d@.@." total;

  (match Relational.min_sum comp balance ~procs with
  | Ok (lo, cut) ->
      Format.printf "lowest on-books total any snapshot could see: %d at %a@."
        lo Cut.pp cut;
      Format.printf "  (%d in flight at that cut)@." (total - lo)
  | Error `Limit -> Format.printf "limit@.");

  (match Relational.max_sum comp balance ~procs with
  | Ok (hi, cut) ->
      Format.printf "highest on-books total: %d at %a@." hi Cut.pp cut;
      if hi > total then
        Format.printf "  AUDIT FAILURE: double counting!@."
      else Format.printf "  never exceeds the true total: no double counting.@."
  | Error `Limit -> Format.printf "limit@.");

  (* Alert threshold: could the books have dipped below 90%% of total? *)
  let reserve = total * 9 / 10 in
  match Relational.possibly_sum_leq comp balance ~procs ~k:reserve with
  | Ok (Detection.Detected cut) ->
      Format.printf "@.reserve alert (<= %d) WOULD have fired, e.g. at %a@."
        reserve Cut.pp cut
  | Ok (Detection.No_detection | Detection.Undetectable_crashed _) ->
      Format.printf "@.reserve alert (<= %d) could never fire in this run@."
        reserve
  | Error `Limit -> Format.printf "limit@."
