(* Quickstart: build a tiny two-process computation by hand, ask
   whether the weak conjunctive predicate l_0 ∧ l_1 ever held, and run
   both of the paper's distributed algorithms on it.

     P0:  [s1]--------m1-------->[s2 l_0]---------.
     P1:  [s1 l_1]--recv m1-->[s2]--m2-->[s3 l_1] |
     P0:  [s3]<------------recv m2----------------'

   l_0 holds in (0,2); l_1 holds in (1,1) and (1,3).
   (0,2) is concurrent with (1,1), so the WCP is detectable and the
   first cut is {0:2 1:1}. *)

open Wcp_trace
open Wcp_core

let () =
  (* 1. Record a computation (normally this comes from tracing a real
        run; here we script it). *)
  let b = Builder.create ~n:2 in
  Builder.set_pred b ~proc:1 true;
  let m1 = Builder.send b ~src:0 ~dst:1 in
  Builder.set_pred b ~proc:0 true;
  Builder.recv b ~dst:1 m1;
  let m2 = Builder.send b ~src:1 ~dst:0 in
  Builder.set_pred b ~proc:1 true;
  Builder.recv b ~dst:0 m2;
  let comp = Builder.finish b in
  Format.printf "%a@." Computation.pp_summary comp;

  (* 2. The WCP spans both processes. *)
  let spec = Spec.all comp in

  (* 3. Offline reference answer. *)
  (match Oracle.first_cut comp spec with
  | Detection.Detected cut -> Format.printf "oracle:    detected %a@." Cut.pp cut
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Format.printf "oracle:    no detection@.");

  (* 4. The §3 vector-clock token algorithm, run as real message-passing
        processes on the simulator. *)
  let vc = Token_vc.detect ~seed:42L comp spec in
  Format.printf "token-vc:  %a@." Detection.pp_result vc;

  (* 5. The §4 direct-dependence algorithm (its cut spans all N
        processes; project to the spec to compare). *)
  let dd = Token_dd.detect ~seed:42L comp spec in
  Format.printf "token-dd:  %a@." Detection.pp_result dd;
  Format.printf "projected: %a@." Detection.pp_outcome
    (Detection.project_outcome spec dd.outcome);

  (* 6. Both must agree with the oracle. *)
  assert (
    Detection.outcome_equal vc.outcome (Oracle.first_cut comp spec));
  assert (
    Detection.outcome_equal
      (Detection.project_outcome spec dd.outcome)
      (Oracle.first_cut comp spec));
  Format.printf "quickstart OK@."
