(* The paper's Fig. 1, live: no trace file anywhere.

   Application processes (a coordinator and its mutual-exclusion
   clients) run inside the simulator, carrying the Fig. 2 / §4.1
   instrumentation: clock tags on their real protocol messages, local
   snapshots to their mated monitor processes the moment their
   predicate becomes true. The monitor plane runs the token algorithms
   ONLINE — the verdict lands while the application is still running.

   The run also records itself; afterwards we replay the oracle on the
   recording to show the online verdict was exact. *)

open Wcp_trace
open Wcp_core

let describe mode =
  match mode with
  | Instrument.Vc -> "vector-clock token (§3)"
  | Instrument.Dd -> "direct-dependence token (§4)"

let show ~mode ~p_bug ~seed =
  let r = Live_mutex.run ~p_bug ~mode ~clients:3 ~rounds:3 ~seed () in
  let spec = Spec.make r.Live_mutex.recorded r.Live_mutex.wcp_procs in
  let online =
    match mode with
    | Instrument.Vc -> r.Live_mutex.online
    | Instrument.Dd -> Detection.project_outcome spec r.Live_mutex.online
  in
  (match (online, r.Live_mutex.detection_time) with
  | Detection.Detected cut, Some t ->
      Format.printf
        "  seed %Ld: monitors flagged CS1∧CS2 at %a — sim time %.0f of %.0f@."
        seed Cut.pp cut t r.Live_mutex.sim_time
  | Detection.Detected cut, None ->
      Format.printf "  seed %Ld: flagged %a at end of run@." seed Cut.pp cut
  | (Detection.No_detection | Detection.Undetectable_crashed _), _ ->
      Format.printf "  seed %Ld: clean (no violating cut exists)@." seed);
  (* Exactness check against the recording. *)
  let expected = Oracle.first_cut r.Live_mutex.recorded spec in
  assert (Detection.outcome_equal online expected)

let () =
  List.iter
    (fun mode ->
      Format.printf "== online monitoring with the %s ==@." (describe mode);
      Format.printf "-- correct coordinator --@.";
      List.iter (fun s -> show ~mode ~p_bug:0.0 ~seed:s) [ 1L; 2L; 3L ];
      Format.printf "-- racy coordinator (p_bug = 0.5) --@.";
      List.iter (fun s -> show ~mode ~p_bug:0.5 ~seed:s) [ 1L; 2L; 3L; 4L ];
      Format.printf "@.")
    [ Instrument.Vc; Instrument.Dd ];
  Format.printf "every online verdict matched the offline oracle exactly.@."
