(* Paper §2, example 2: detecting a broken lock manager.

   Serializability is enforced with two-phase locking on a shared item:
   readers may share, a writer must be exclusive. A bug makes the
   manager occasionally skip the conflict check. The error condition
   "(P_1 has read lock) ∧ (P_2 has write lock)" is a WCP; we run the
   direct-dependence algorithm (the lock manager's mailbox makes every
   process causally entangled, the regime §4 targets) and cross-check
   with the centralized Garg–Waldecker checker. *)

open Wcp_trace
open Wcp_core

let () =
  Format.printf "== correct lock manager ==@.";
  for s = 1 to 5 do
    let seed = Int64.of_int s in
    let w =
      Workloads.two_phase_locking ~readers:2 ~writers:2 ~requests:3 ~p_bug:0.0
        ~seed
    in
    let spec = Spec.make w.Workloads.comp w.Workloads.procs in
    let r = Token_dd.detect ~seed w.Workloads.comp spec in
    Format.printf "  seed %d: %a@." s Detection.pp_outcome
      (Detection.project_outcome spec r.Detection.outcome)
  done;

  Format.printf "@.== buggy lock manager (p_bug = 0.4) ==@.";
  let caught = ref 0 in
  for s = 1 to 10 do
    let seed = Int64.of_int s in
    let w =
      Workloads.two_phase_locking ~readers:2 ~writers:2 ~requests:4 ~p_bug:0.4
        ~seed
    in
    let spec = Spec.make w.Workloads.comp w.Workloads.procs in
    let dd = Token_dd.detect ~parallel:true ~seed w.Workloads.comp spec in
    let checker = Checker_centralized.detect ~seed w.Workloads.comp spec in
    let projected = Detection.project_outcome spec dd.Detection.outcome in
    assert (Detection.outcome_equal projected checker.Detection.outcome);
    (match projected with
    | Detection.Detected cut ->
        incr caught;
        Format.printf
          "  seed %2d: read lock and write lock held concurrently at %a@." s
          Cut.pp cut
    | Detection.No_detection | Detection.Undetectable_crashed _ ->
        Format.printf "  seed %2d: run stayed safe@." s);
    (* §4.4 vs [7]: the direct-dependence algorithm spreads its work
       across processes; the checker concentrates all of its work on
       one. *)
    let n = Computation.n w.Workloads.comp in
    let dd_total = Wcp_sim.Stats.total_work dd.Detection.stats in
    let dd_max = Wcp_sim.Stats.max_work dd.Detection.stats in
    let chk_work =
      Wcp_sim.Stats.work_of checker.Detection.stats (Run_common.extra_id ~n)
    in
    if s = 1 then
      Format.printf
        "    (cost note: dd work %d spread with busiest process %d;@.\
        \     checker work %d, all on the single checker)@."
        dd_total dd_max chk_work
  done;
  Format.printf "@.%d of 10 buggy runs had a detectable lock conflict.@." !caught
